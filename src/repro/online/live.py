"""The live fluid engine: the batch component simulator, made injectable.

:class:`~repro.simulation.simulator.FluidSimulator` replays one complete
schedule and returns.  The online mode needs the same physics — Max-Min
fair fluid flows over link-connected components, lazily re-solved — but
with jobs *entering mid-flight*: a new DAG's tasks append to the live
processor queues and its redistribution flows join the live component
registry, re-solving only the components they touch.

:class:`LiveFluidEngine` is that engine.  It drives the *same*
:class:`~repro.simulation.simulator._ComponentRegistry` the batch
engine runs on — the component union-find, event heap, lazy re-solve,
local link indexing and dynamic splits live in one implementation —
plus two operations the batch loop never needed:

* :meth:`inject` — add a scheduled job at the current virtual time
  (tasks, per-processor queue entries, edge flows, pair table rows);
* :meth:`advance_until` — run the event loop up to a target time and
  stop, so arrivals can interleave with in-flight events.

Equivalence contract
--------------------
Because the component machinery is shared code (not a transplant), a
single job injected at t=0 and drained produces byte-identical traces
to ``simulate(schedule)`` — the property ``tests/test_online_engine.py``
pins against the dense-DAG golden scenario.

Tasks are namespaced ``"<job_id>/<task>"`` internally; a uniform prefix
preserves every heap tie-break order within a job, which is why the
single-job equivalence is exact and not merely numerical.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.redistribution.matrix import redistribution_flows
from repro.scheduling.schedule import Schedule
from repro.simulation.simulator import (
    _REL_BYTES_EPS,
    _TIME_EPS,
    _ComponentRegistry,
    _grow,
    _resolve_solver_threads,
)
from repro.simulation.trace import FlowTrace, TaskTrace

__all__ = ["LiveFluidEngine", "LiveJobState"]


@dataclass
class LiveJobState:
    """Per-job execution state the engine tracks for metrics."""

    job_id: str
    inject_time: float
    n_tasks: int
    n_done: int = 0
    start: float | None = None
    completion: float | None = None

    @property
    def finished(self) -> bool:
        return self.n_done == self.n_tasks


class LiveFluidEngine:
    """Persistent, injectable fluid simulation over one platform.

    Parameters
    ----------
    cluster:
        The shared platform every injected schedule was mapped onto
        (anything with a ``.topology``, including multi-cluster
        platforms).  Processor ids in injected schedules are global ids
        on this platform.
    collect_flow_traces:
        Keep per-flow trace records (off by default, as in batch).
    lazy:
        Re-solve only touched components (default); ``False`` re-solves
        every live component at every flow-set change — the same
        byte-identical full-solve oracle the batch engine offers.
    local_index:
        Per-component local link numbering for O(component links) solves
        (default on; bitwise-neutral — see the batch engine).
    split_threshold:
        Drain-hysteresis fraction for dynamic component splits (default
        0.5; ``None`` disables, reproducing merge-only solve costs).
    solver_threads:
        Concurrent dirty-component solves through the GIL-free batch
        kernel (default ``None`` = the ``REPRO_SOLVER_THREADS`` env
        var, itself defaulting to 1).  Byte-identical for every value —
        see :class:`~repro.simulation.simulator.FluidSimulator`.
    """

    def __init__(self, cluster, *, collect_flow_traces: bool = False,
                 lazy: bool = True, local_index: bool = True,
                 split_threshold: float | None = 0.5,
                 solver_threads: int | None = None) -> None:
        self.cluster = cluster
        self.topo = cluster.topology
        self.capacities = self.topo.capacity_array
        self.lazy = lazy
        self.collect_flow_traces = collect_flow_traces

        # ---- pair tables (shared across jobs, keyed by (src, dst)) ---- #
        self.pair_index: dict[tuple[int, int], int] = {}
        self.pair_routes: list[tuple[int, ...]] = []
        self.pair_cap: list[float] = []
        self.pair_lat: list[float] = []

        # ---- global flow arrays (amortised append) ---- #
        self.nf = 0
        self.size = np.empty(8, dtype=float)
        self.remaining = np.empty(8, dtype=float)
        self.done_threshold = np.empty(8, dtype=float)
        self.lat = np.empty(8, dtype=float)
        self.src = np.empty(8, dtype=np.intp)
        self.dst = np.empty(8, dtype=np.intp)
        self.edge_of = np.empty(8, dtype=np.intp)
        self.pair_of = np.empty(8, dtype=np.intp)
        self.release_time = np.empty(8, dtype=float)

        # ---- shared component machinery (same class as batch) ---- #
        self.solver_threads = _resolve_solver_threads(solver_threads)
        self.reg = _ComponentRegistry(
            self.capacities, self.pair_routes, self.pair_cap,
            lazy=lazy, local_index=local_index,
            split_threshold=split_threshold,
            solver_threads=self.solver_threads)
        self.reg.bind(self.remaining, self.done_threshold)

        # ---- task bookkeeping (dict-based _TaskBookkeeping) ---- #
        self.edges: list[tuple[str, str]] = []   # global (namespaced) names
        self.total = 0
        self.exec_time: dict[str, float] = {}
        self.procs_of: dict[str, tuple[int, ...]] = {}
        self.succs: dict[str, list[str]] = {}
        self.proc_queue: dict[int, list[str]] = {}
        self.queue_pos: dict[int, int] = {}
        self.preds_left: dict[str, int] = {}
        self.flows_left: dict[str, int] = {}
        self.edge_flows: dict[int, list[int]] = {}
        self.out_edge_ids: dict[str, list[int]] = {}
        self.started: set[str] = set()
        self.done_tasks: set[str] = set()
        self.task_start: dict[str, float] = {}
        self.finish_heap: list[tuple[float, str]] = []
        self.release_heap: list[tuple[float, int]] = []
        self.traces: dict[str, TaskTrace] = {}
        self.flow_traces: list[FlowTrace] = []
        self.check_ready: set[str] = set()

        # ---- jobs ---- #
        self.jobs: dict[str, LiveJobState] = {}
        self.job_of_task: dict[str, str] = {}
        self._newly_completed: list[str] = []

        self.now = 0.0
        self.events = 0
        self._loop_s = 0.0        # event-loop wall clock (advance/drain)

    # solver counters live on the shared registry
    @property
    def solves_full(self) -> int:
        return self.reg.solves_full

    @property
    def solves_component(self) -> int:
        return self.reg.solves_component

    @property
    def splits(self) -> int:
        return self.reg.splits

    @property
    def solve_rows(self) -> int:
        return self.reg.solve_rows

    @property
    def solve_s(self) -> float:
        """Wall-clock seconds inside the rate re-solve phase."""
        return self.reg.solve_s

    @property
    def event_s(self) -> float:
        """Event-loop wall clock outside the solve phase."""
        return self._loop_s - self.reg.solve_s

    # ------------------------------------------------------------------ #
    # injection
    # ------------------------------------------------------------------ #
    def inject(self, job_id: str, schedule: Schedule, at: float) -> None:
        """Add a scheduled job's tasks and flows at virtual time ``at``.

        ``at`` must not precede the current virtual time; ready source
        tasks start immediately at ``at``.
        """
        if job_id in self.jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        if at < self.now - _TIME_EPS:
            raise ValueError(
                f"cannot inject {job_id!r} at t={at} (now={self.now})")
        graph = schedule.graph
        names = graph.task_names()
        gname = {n: f"{job_id}/{n}" for n in names}

        for n in names:
            g = gname[n]
            self.exec_time[g] = schedule[n].duration
            self.procs_of[g] = schedule[n].procs
            self.preds_left[g] = len(graph.predecessors(n))
            self.flows_left[g] = 0
            self.succs[g] = [gname[s] for s in graph.successors(n)]
            self.out_edge_ids[g] = []
            self.job_of_task[g] = job_id
        for p, entries in schedule.proc_timeline().items():
            self.proc_queue.setdefault(p, []).extend(
                gname[e.task] for e in entries)
            self.queue_pos.setdefault(p, 0)

        # expand edges into flows, in the batch _build_flows order, with
        # pair ids resolved against the shared cross-job pair table
        new_src: list[int] = []
        new_dst: list[int] = []
        new_size: list[float] = []
        new_eid: list[int] = []
        new_pid: list[int] = []
        for u, v, data in graph.edges():
            eid = len(self.edges)
            self.edges.append((gname[u], gname[v]))
            self.out_edge_ids[gname[u]].append(eid)
            specs = redistribution_flows(schedule[u].procs, schedule[v].procs,
                                         data)
            for s in specs:
                if s.data_bytes <= 0:
                    continue
                pid = self.pair_index.get((s.src, s.dst))
                if pid is None:
                    pid = len(self.pair_routes)
                    self.pair_index[(s.src, s.dst)] = pid
                    route = self.topo.route(s.src, s.dst)
                    self.pair_cap.append(route.rate_cap_Bps)
                    self.pair_lat.append(route.latency_s)
                    self.pair_routes.append(
                        self.topo.route_indices(s.src, s.dst))
                    self.reg.comp_of_pair.append(-1)
                new_src.append(s.src)
                new_dst.append(s.dst)
                new_size.append(s.data_bytes)
                new_eid.append(eid)
                new_pid.append(pid)

        n_new = len(new_size)
        base = self.nf
        need = base + n_new
        self.size = _grow(self.size, need)
        self.remaining = _grow(self.remaining, need)
        self.done_threshold = _grow(self.done_threshold, need)
        # growth may reallocate: re-bind the registry's views (and the
        # kernel-side raw addresses cached alongside them)
        self.reg.bind(self.remaining, self.done_threshold)
        self.lat = _grow(self.lat, need)
        self.src = _grow(self.src, need)
        self.dst = _grow(self.dst, need)
        self.edge_of = _grow(self.edge_of, need)
        self.pair_of = _grow(self.pair_of, need)
        self.release_time = _grow(self.release_time, need)
        if n_new:
            sizes = np.array(new_size, dtype=float)
            self.size[base:need] = sizes
            self.remaining[base:need] = sizes
            self.done_threshold[base:need] = np.maximum(
                sizes * _REL_BYTES_EPS, 1e-12)
            pid_arr = np.array(new_pid, dtype=np.intp)
            # index the pair-latency list per new flow — materialising the
            # whole pair table here would be O(total pairs) per inject
            pl = self.pair_lat
            self.lat[base:need] = [pl[p] for p in new_pid]
            self.src[base:need] = new_src
            self.dst[base:need] = new_dst
            self.edge_of[base:need] = new_eid
            self.pair_of[base:need] = pid_arr
            self.release_time[base:need] = np.inf
            for off, eid in enumerate(new_eid):
                fid = base + off
                self.edge_flows.setdefault(eid, []).append(fid)
                self.flows_left[self.edges[eid][1]] += 1
        self.nf = need

        self.total += len(names)
        self.jobs[job_id] = LiveJobState(job_id=job_id, inject_time=at,
                                         n_tasks=len(names))
        self.check_ready.update(gname.values())
        self._start_ready(at)

    # ------------------------------------------------------------------ #
    # task bookkeeping (dict-based _TaskBookkeeping methods)
    # ------------------------------------------------------------------ #
    def _at_front(self, name: str) -> bool:
        return all(
            self.queue_pos[p] < len(self.proc_queue[p])
            and self.proc_queue[p][self.queue_pos[p]] == name
            for p in self.procs_of[name]
        )

    def _can_start(self, name: str) -> bool:
        return (name not in self.started
                and self.preds_left[name] == 0
                and self.flows_left[name] == 0
                and self._at_front(name))

    def _start_task(self, name: str, now: float) -> None:
        self.started.add(name)
        self.task_start[name] = now
        job = self.jobs[self.job_of_task[name]]
        if job.start is None:
            job.start = now
        heapq.heappush(self.finish_heap, (now + self.exec_time[name], name))

    def _finish_task(self, name: str, now: float) -> None:
        self.done_tasks.add(name)
        self.traces[name] = TaskTrace(task=name, procs=self.procs_of[name],
                                      start=self.task_start[name], finish=now)
        job = self.jobs[self.job_of_task[name]]
        job.n_done += 1
        if job.n_done == job.n_tasks:
            job.completion = now
            self._newly_completed.append(job.job_id)
        for p in self.procs_of[name]:
            self.queue_pos[p] += 1
            pos = self.queue_pos[p]
            if pos < len(self.proc_queue[p]):
                self.check_ready.add(self.proc_queue[p][pos])
        for succ in self.succs[name]:
            self.preds_left[succ] -= 1
            self.check_ready.add(succ)
        for eid in self.out_edge_ids[name]:
            for fid in self.edge_flows.get(eid, ()):  # release after latency
                t_rel = now + self.lat[fid]
                self.release_time[fid] = t_rel
                heapq.heappush(self.release_heap, (t_rel, fid))

    def _complete_flow(self, fid: int, now: float) -> None:
        eid = int(self.edge_of[fid])
        self.flows_left[self.edges[eid][1]] -= 1
        self.check_ready.add(self.edges[eid][1])
        if self.collect_flow_traces:
            self.flow_traces.append(FlowTrace(
                edge=self.edges[eid],
                src=int(self.src[fid]),
                dst=int(self.dst[fid]),
                data_bytes=float(self.size[fid]),
                release=float(self.release_time[fid]),
                finish=now))

    def _start_ready(self, now: float) -> None:
        for name in self.check_ready:
            if name not in self.started and self._can_start(name):
                self._start_task(name, now)
        self.check_ready.clear()

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def _peek_time(self) -> float:
        """Earliest pending event time (inf if idle), skipping stale
        component-heap entries exactly as the batch loop's peek does."""
        t_next = self.reg.peek()
        if self.finish_heap and self.finish_heap[0][0] < t_next:
            t_next = self.finish_heap[0][0]
        if self.release_heap and self.release_heap[0][0] < t_next:
            t_next = self.release_heap[0][0]
        return t_next

    def _step(self) -> None:
        """Process every event at ``self.now`` — the batch loop body."""
        now = self.now
        reg = self.reg
        finish_heap = self.finish_heap
        release_heap = self.release_heap

        self.events += 1
        reg.begin_event()

        # 1) flow completions (component sweep + local flows)
        set_changed = reg.sweep(now, self._complete_flow)

        # 2) task completions
        while finish_heap and finish_heap[0][0] <= now + _TIME_EPS:
            _, name = heapq.heappop(finish_heap)
            self._finish_task(name, now)

        # 3) flow releases
        while release_heap and release_heap[0][0] <= now + _TIME_EPS:
            _, fid = heapq.heappop(release_heap)
            set_changed = True
            reg.release(int(fid), int(self.pair_of[fid]), now)

        # 4) newly startable tasks
        self._start_ready(now)

        # 5) re-solve dirty (lazy) or all live (oracle) components
        if set_changed:
            reg.resolve(now)

    # ------------------------------------------------------------------ #
    # public driving interface
    # ------------------------------------------------------------------ #
    def advance_until(self, t: float) -> None:
        """Process every pending event at or before ``t``; the virtual
        clock ends at ``max(now, t)``.  Idle gaps just advance the clock —
        components carry their own materialisation times."""
        if t < self.now - _TIME_EPS:
            raise ValueError(f"cannot rewind from t={self.now} to t={t}")
        t0 = perf_counter()
        with np.errstate(divide="ignore", invalid="ignore"):
            while True:
                t_next = self._peek_time()
                if t_next > t:
                    break
                self.now = t_next
                self._step()
        self._loop_s += perf_counter() - t0
        if t > self.now:
            self.now = t

    def drain(self) -> None:
        """Run the event loop until every injected task has finished."""
        t0 = perf_counter()
        with np.errstate(divide="ignore", invalid="ignore"):
            while len(self.done_tasks) < self.total:
                t_next = self._peek_time()
                if not math.isfinite(t_next):  # pragma: no cover - deadlock
                    raise RuntimeError(
                        f"simulation stalled at t={self.now:g}: "
                        f"{self.total - len(self.done_tasks)} tasks never "
                        f"became runnable")
                self.now = t_next
                self._step()
        self._loop_s += perf_counter() - t0

    def pop_completed_jobs(self) -> list[str]:
        """Job ids that finished since the last call (completion order)."""
        out = self._newly_completed
        self._newly_completed = []
        return out

    @property
    def idle(self) -> bool:
        return len(self.done_tasks) == self.total

    def makespan(self) -> float:
        """Span from the earliest task start to the latest finish."""
        if not self.traces:
            return 0.0
        return (max(tr.finish for tr in self.traces.values())
                - min(tr.start for tr in self.traces.values()))
