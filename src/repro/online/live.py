"""The live fluid engine: the batch component simulator, made injectable.

:class:`~repro.simulation.simulator.FluidSimulator` replays one complete
schedule and returns.  The online mode needs the same physics — Max-Min
fair fluid flows over link-connected components, lazily re-solved — but
with jobs *entering mid-flight*: a new DAG's tasks append to the live
processor queues and its redistribution flows join the live component
registry, re-solving only the components they touch.

:class:`LiveFluidEngine` is that engine.  It is a faithful transplant of
``FluidSimulator._run_component`` from closure-over-locals form into a
class whose state persists across calls, plus two operations the batch
loop never needed:

* :meth:`inject` — add a scheduled job at the current virtual time
  (tasks, per-processor queue entries, edge flows, pair table rows);
* :meth:`advance_until` — run the event loop up to a target time and
  stop, so arrivals can interleave with in-flight events.

Equivalence contract
--------------------
The event loop body, the component bookkeeping (it reuses
``_Component`` itself) and every vectorised numpy expression are kept
*identical* to the batch engine, so a single job injected at t=0 and
drained produces byte-identical traces to ``simulate(schedule)`` — the
property ``tests/test_online_engine.py`` pins against the dense-DAG
golden scenario.  When editing either engine, edit both.

Tasks are namespaced ``"<job_id>/<task>"`` internally; a uniform prefix
preserves every heap tie-break order within a job, which is why the
single-job equivalence is exact and not merely numerical.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.network.maxmin import dsu_find, waterfill_bundled
from repro.redistribution.matrix import redistribution_flows
from repro.scheduling.schedule import Schedule
from repro.simulation.simulator import (
    _REL_BYTES_EPS,
    _TIME_EPS,
    _Component,
    _grow,
)
from repro.simulation.trace import FlowTrace, TaskTrace

__all__ = ["LiveFluidEngine", "LiveJobState"]


@dataclass
class LiveJobState:
    """Per-job execution state the engine tracks for metrics."""

    job_id: str
    inject_time: float
    n_tasks: int
    n_done: int = 0
    start: float | None = None
    completion: float | None = None

    @property
    def finished(self) -> bool:
        return self.n_done == self.n_tasks


class LiveFluidEngine:
    """Persistent, injectable fluid simulation over one platform.

    Parameters
    ----------
    cluster:
        The shared platform every injected schedule was mapped onto
        (anything with a ``.topology``, including multi-cluster
        platforms).  Processor ids in injected schedules are global ids
        on this platform.
    collect_flow_traces:
        Keep per-flow trace records (off by default, as in batch).
    lazy:
        Re-solve only touched components (default); ``False`` re-solves
        every live component at every flow-set change — the same
        byte-identical full-solve oracle the batch engine offers.
    """

    def __init__(self, cluster, *, collect_flow_traces: bool = False,
                 lazy: bool = True) -> None:
        self.cluster = cluster
        self.topo = cluster.topology
        self.capacities = self.topo.capacity_array
        self.lazy = lazy
        self.collect_flow_traces = collect_flow_traces

        n_links = len(self.capacities)
        # ---- pair tables (shared across jobs, keyed by (src, dst)) ---- #
        self.pair_index: dict[tuple[int, int], int] = {}
        self.pair_routes: list[tuple[int, ...]] = []
        self.pair_cap: list[float] = []
        self.pair_lat: list[float] = []

        # ---- global flow arrays (amortised append) ---- #
        self.nf = 0
        self.size = np.empty(8, dtype=float)
        self.remaining = np.empty(8, dtype=float)
        self.done_threshold = np.empty(8, dtype=float)
        self.lat = np.empty(8, dtype=float)
        self.src = np.empty(8, dtype=np.intp)
        self.dst = np.empty(8, dtype=np.intp)
        self.edge_of = np.empty(8, dtype=np.intp)
        self.pair_of = np.empty(8, dtype=np.intp)
        self.release_time = np.empty(8, dtype=float)

        # ---- component registry (identical to the batch closures) ---- #
        self.comps: list[_Component] = []
        self.parent: list[int] = []
        self.link_owner = np.full(n_links, -1, dtype=np.intp)
        self.link_pairs = np.zeros(n_links, dtype=np.intp)
        self.comp_of_pair: list[int] = []        # grows with the pair table
        self.comp_heap: list[tuple[float, int, int]] = []
        self.local_heap: list[tuple[float, int]] = []

        # ---- task bookkeeping (dict-based _TaskBookkeeping) ---- #
        self.edges: list[tuple[str, str]] = []   # global (namespaced) names
        self.total = 0
        self.exec_time: dict[str, float] = {}
        self.procs_of: dict[str, tuple[int, ...]] = {}
        self.succs: dict[str, list[str]] = {}
        self.proc_queue: dict[int, list[str]] = {}
        self.queue_pos: dict[int, int] = {}
        self.preds_left: dict[str, int] = {}
        self.flows_left: dict[str, int] = {}
        self.edge_flows: dict[int, list[int]] = {}
        self.out_edge_ids: dict[str, list[int]] = {}
        self.started: set[str] = set()
        self.done_tasks: set[str] = set()
        self.task_start: dict[str, float] = {}
        self.finish_heap: list[tuple[float, str]] = []
        self.release_heap: list[tuple[float, int]] = []
        self.traces: dict[str, TaskTrace] = {}
        self.flow_traces: list[FlowTrace] = []
        self.check_ready: set[str] = set()

        # ---- jobs ---- #
        self.jobs: dict[str, LiveJobState] = {}
        self.job_of_task: dict[str, str] = {}
        self._newly_completed: list[str] = []

        self.now = 0.0
        self.events = 0
        self.solves_full = 0
        self.solves_component = 0
        self._touched: list[_Component] = []

    # ------------------------------------------------------------------ #
    # injection
    # ------------------------------------------------------------------ #
    def inject(self, job_id: str, schedule: Schedule, at: float) -> None:
        """Add a scheduled job's tasks and flows at virtual time ``at``.

        ``at`` must not precede the current virtual time; ready source
        tasks start immediately at ``at``.
        """
        if job_id in self.jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        if at < self.now - _TIME_EPS:
            raise ValueError(
                f"cannot inject {job_id!r} at t={at} (now={self.now})")
        graph = schedule.graph
        names = graph.task_names()
        gname = {n: f"{job_id}/{n}" for n in names}

        for n in names:
            g = gname[n]
            self.exec_time[g] = schedule[n].duration
            self.procs_of[g] = schedule[n].procs
            self.preds_left[g] = len(graph.predecessors(n))
            self.flows_left[g] = 0
            self.succs[g] = [gname[s] for s in graph.successors(n)]
            self.out_edge_ids[g] = []
            self.job_of_task[g] = job_id
        for p, entries in schedule.proc_timeline().items():
            self.proc_queue.setdefault(p, []).extend(
                gname[e.task] for e in entries)
            self.queue_pos.setdefault(p, 0)

        # expand edges into flows, in the batch _build_flows order, with
        # pair ids resolved against the shared cross-job pair table
        new_src: list[int] = []
        new_dst: list[int] = []
        new_size: list[float] = []
        new_eid: list[int] = []
        new_pid: list[int] = []
        for u, v, data in graph.edges():
            eid = len(self.edges)
            self.edges.append((gname[u], gname[v]))
            self.out_edge_ids[gname[u]].append(eid)
            specs = redistribution_flows(schedule[u].procs, schedule[v].procs,
                                         data)
            for s in specs:
                if s.data_bytes <= 0:
                    continue
                pid = self.pair_index.get((s.src, s.dst))
                if pid is None:
                    pid = len(self.pair_routes)
                    self.pair_index[(s.src, s.dst)] = pid
                    route = self.topo.route(s.src, s.dst)
                    self.pair_cap.append(route.rate_cap_Bps)
                    self.pair_lat.append(route.latency_s)
                    self.pair_routes.append(
                        self.topo.route_indices(s.src, s.dst))
                    self.comp_of_pair.append(-1)
                new_src.append(s.src)
                new_dst.append(s.dst)
                new_size.append(s.data_bytes)
                new_eid.append(eid)
                new_pid.append(pid)

        n_new = len(new_size)
        base = self.nf
        need = base + n_new
        self.size = _grow(self.size, need)
        self.remaining = _grow(self.remaining, need)
        self.done_threshold = _grow(self.done_threshold, need)
        self.lat = _grow(self.lat, need)
        self.src = _grow(self.src, need)
        self.dst = _grow(self.dst, need)
        self.edge_of = _grow(self.edge_of, need)
        self.pair_of = _grow(self.pair_of, need)
        self.release_time = _grow(self.release_time, need)
        if n_new:
            sizes = np.array(new_size, dtype=float)
            self.size[base:need] = sizes
            self.remaining[base:need] = sizes
            self.done_threshold[base:need] = np.maximum(
                sizes * _REL_BYTES_EPS, 1e-12)
            pid_arr = np.array(new_pid, dtype=np.intp)
            self.lat[base:need] = np.array(self.pair_lat, dtype=float)[pid_arr]
            self.src[base:need] = new_src
            self.dst[base:need] = new_dst
            self.edge_of[base:need] = new_eid
            self.pair_of[base:need] = pid_arr
            self.release_time[base:need] = np.inf
            for off, eid in enumerate(new_eid):
                fid = base + off
                self.edge_flows.setdefault(eid, []).append(fid)
                self.flows_left[self.edges[eid][1]] += 1
        self.nf = need

        self.total += len(names)
        self.jobs[job_id] = LiveJobState(job_id=job_id, inject_time=at,
                                         n_tasks=len(names))
        self.check_ready.update(gname.values())
        self._start_ready(at)

    # ------------------------------------------------------------------ #
    # task bookkeeping (dict-based _TaskBookkeeping methods)
    # ------------------------------------------------------------------ #
    def _at_front(self, name: str) -> bool:
        return all(
            self.queue_pos[p] < len(self.proc_queue[p])
            and self.proc_queue[p][self.queue_pos[p]] == name
            for p in self.procs_of[name]
        )

    def _can_start(self, name: str) -> bool:
        return (name not in self.started
                and self.preds_left[name] == 0
                and self.flows_left[name] == 0
                and self._at_front(name))

    def _start_task(self, name: str, now: float) -> None:
        self.started.add(name)
        self.task_start[name] = now
        job = self.jobs[self.job_of_task[name]]
        if job.start is None:
            job.start = now
        heapq.heappush(self.finish_heap, (now + self.exec_time[name], name))

    def _finish_task(self, name: str, now: float) -> None:
        self.done_tasks.add(name)
        self.traces[name] = TaskTrace(task=name, procs=self.procs_of[name],
                                      start=self.task_start[name], finish=now)
        job = self.jobs[self.job_of_task[name]]
        job.n_done += 1
        if job.n_done == job.n_tasks:
            job.completion = now
            self._newly_completed.append(job.job_id)
        for p in self.procs_of[name]:
            self.queue_pos[p] += 1
            pos = self.queue_pos[p]
            if pos < len(self.proc_queue[p]):
                self.check_ready.add(self.proc_queue[p][pos])
        for succ in self.succs[name]:
            self.preds_left[succ] -= 1
            self.check_ready.add(succ)
        for eid in self.out_edge_ids[name]:
            for fid in self.edge_flows.get(eid, ()):  # release after latency
                t_rel = now + self.lat[fid]
                self.release_time[fid] = t_rel
                heapq.heappush(self.release_heap, (t_rel, fid))

    def _complete_flow(self, fid: int, now: float) -> None:
        eid = int(self.edge_of[fid])
        self.flows_left[self.edges[eid][1]] -= 1
        self.check_ready.add(self.edges[eid][1])
        if self.collect_flow_traces:
            self.flow_traces.append(FlowTrace(
                edge=self.edges[eid],
                src=int(self.src[fid]),
                dst=int(self.dst[fid]),
                data_bytes=float(self.size[fid]),
                release=float(self.release_time[fid]),
                finish=now))

    def _start_ready(self, now: float) -> None:
        for name in self.check_ready:
            if name not in self.started and self._can_start(name):
                self._start_task(name, now)
        self.check_ready.clear()

    # ------------------------------------------------------------------ #
    # component machinery (the batch closures, as methods)
    # ------------------------------------------------------------------ #
    def _find(self, cid: int) -> int:
        return dsu_find(self.parent, cid)

    def _new_component(self) -> _Component:
        cid = len(self.comps)
        comp = _Component(cid)
        self.comps.append(comp)
        self.parent.append(cid)
        return comp

    def _push_comp(self, comp: _Component) -> None:
        if math.isfinite(comp.next_t):
            heapq.heappush(self.comp_heap,
                           (comp.next_t, comp.cid, comp.stamp))

    def _materialize(self, comp: _Component, t: float) -> None:
        if t > comp.t_mat:
            n = comp.n_flows
            fids = comp.flow_fid[:n]
            self.remaining[fids] -= comp.flow_rates[:n] * (t - comp.t_mat)
        comp.t_mat = t

    def _merge(self, a: _Component, b: _Component, t: float) -> _Component:
        self._materialize(a, t)
        self._materialize(b, t)
        off = a.n_rows
        a.row_pair = _grow(a.row_pair, off + b.n_rows)
        a.mult = _grow(a.mult, off + b.n_rows)
        a.row_caps = _grow(a.row_caps, off + b.n_rows)
        a.row_lens = _grow(a.row_lens, off + b.n_rows)
        a.row_pair[off:off + b.n_rows] = b.row_pair[:b.n_rows]
        a.mult[off:off + b.n_rows] = b.mult[:b.n_rows]
        a.row_caps[off:off + b.n_rows] = b.row_caps[:b.n_rows]
        a.row_lens[off:off + b.n_rows] = b.row_lens[:b.n_rows]
        end = a.flat_len + b.flat_len
        a.flat = _grow(a.flat, end)
        a.flat[a.flat_len:end] = b.flat[:b.flat_len]
        a.flat_len = end
        a.n_rows = off + b.n_rows
        a.live_rows += b.live_rows
        for pid, row in b.pair_rows.items():
            a.pair_rows[pid] = off + row
            self.comp_of_pair[pid] = a.cid
        if a.uniform and (not b.uniform or b.route_len != a.route_len):
            a.uniform = False
            a.route_len = 0
        fo = a.n_flows
        a.flow_fid = _grow(a.flow_fid, fo + b.n_flows)
        a.flow_row = _grow(a.flow_row, fo + b.n_flows)
        a.flow_rates = _grow(a.flow_rates, fo + b.n_flows)
        a.proj = _grow(a.proj, fo + b.n_flows)
        a.flow_fid[fo:fo + b.n_flows] = b.flow_fid[:b.n_flows]
        a.flow_row[fo:fo + b.n_flows] = b.flow_row[:b.n_flows] + off
        a.flow_rates[fo:fo + b.n_flows] = b.flow_rates[:b.n_flows]
        a.proj[fo:fo + b.n_flows] = b.proj[:b.n_flows]
        a.n_flows = fo + b.n_flows
        a.live_flows += b.live_flows
        b.alive = False
        self.parent[b.cid] = a.cid
        a.dirty = True
        return a

    def _activate_pair(self, pid: int, t: float) -> tuple[_Component, int]:
        links = self.pair_routes[pid]
        roots: list[int] = []
        for li in links:
            owner = self.link_owner[li]
            if owner != -1:
                r = self._find(int(owner))
                if r not in roots:
                    roots.append(r)
        if not roots:
            comp = self._new_component()
            comp.t_mat = t
        else:
            comp = self.comps[roots[0]]
            self._materialize(comp, t)
            for r in roots[1:]:
                other = self.comps[r]
                if other.live_rows >= comp.live_rows:
                    comp, other = other, comp
                comp = self._merge(comp, other, t)
        row = comp.add_pair(pid, links, self.pair_cap[pid])
        self.comp_of_pair[pid] = comp.cid
        for li in links:
            self.link_owner[li] = comp.cid
            self.link_pairs[li] += 1
        comp.dirty = True
        return comp, row

    def _deactivate_pair(self, pid: int, comp: _Component) -> None:
        comp.pair_rows.pop(pid, None)
        self.comp_of_pair[pid] = -1
        comp.live_rows -= 1
        for li in self.pair_routes[pid]:
            self.link_pairs[li] -= 1
            if self.link_pairs[li] == 0:
                self.link_owner[li] = -1

    def _comp_waterfill(self, comp: _Component) -> np.ndarray:
        self.solves_component += 1
        n = comp.n_rows
        if comp.uniform and comp.route_len:
            return waterfill_bundled(
                comp.flat[:comp.flat_len], None, comp.mult[:n],
                self.capacities, comp.row_caps[:n],
                route_len=comp.route_len)
        ptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(comp.row_lens[:n], out=ptr[1:])
        return waterfill_bundled(
            comp.flat[:comp.flat_len], ptr, comp.mult[:n],
            self.capacities, comp.row_caps[:n])

    def _solve(self, comp: _Component, t: float) -> None:
        comp.rates = self._comp_waterfill(comp)
        nf = comp.n_flows
        rf = comp.rates[comp.flow_row[:nf]]
        comp.flow_rates[:nf] = rf
        comp.proj[:nf] = t + self.remaining[comp.flow_fid[:nf]] / rf
        comp.stamp += 1
        comp.next_t = float(comp.proj[:nf].min()) if nf else math.inf
        comp.dirty = False
        self._push_comp(comp)

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def _peek_time(self) -> float:
        """Earliest pending event time (inf if idle), skipping stale
        component-heap entries exactly as the batch loop's peek does."""
        t_next = math.inf
        comp_heap = self.comp_heap
        while comp_heap:
            tt, cid, stamp = comp_heap[0]
            comp = self.comps[cid]
            if not comp.alive or comp.stamp != stamp:
                heapq.heappop(comp_heap)
                continue
            t_next = tt
            break
        if self.local_heap and self.local_heap[0][0] < t_next:
            t_next = self.local_heap[0][0]
        if self.finish_heap and self.finish_heap[0][0] < t_next:
            t_next = self.finish_heap[0][0]
        if self.release_heap and self.release_heap[0][0] < t_next:
            t_next = self.release_heap[0][0]
        return t_next

    def _step(self) -> None:
        """Process every event at ``self.now`` — the batch loop body."""
        now = self.now
        remaining = self.remaining
        done_threshold = self.done_threshold
        comps = self.comps
        comp_heap = self.comp_heap
        local_heap = self.local_heap
        finish_heap = self.finish_heap
        release_heap = self.release_heap
        lazy = self.lazy

        self.events += 1
        set_changed = False
        touched = self._touched
        touched.clear()

        # 1) flow completions: pop every component whose earliest
        # projection fired, materialise it, sweep its flows
        while comp_heap and comp_heap[0][0] <= now:
            _, cid, stamp = heapq.heappop(comp_heap)
            comp = comps[cid]
            if not comp.alive or comp.stamp != stamp:
                continue
            self._materialize(comp, now)
            nf = comp.n_flows
            fids = comp.flow_fid[:nf]
            done_sel = remaining[fids] <= done_threshold[fids]
            if not done_sel.any():
                # spurious wake-up (rates dropped since the push):
                # reproject from materialised remaining
                comp.stamp += 1
                comp.proj[:nf] = now + (remaining[fids]
                                        / comp.flow_rates[:nf])
                comp.next_t = (float(comp.proj[:nf].min())
                               if nf else math.inf)
                self._push_comp(comp)
                continue
            finished = fids[done_sel]
            set_changed = True
            comp.dirty = True
            comp.live_flows -= len(finished)
            rows = comp.flow_row[:nf][done_sel]
            np.subtract.at(comp.mult, rows, 1)
            remaining[finished] = np.inf      # dead-slot marker
            comp.flow_rates[:nf][done_sel] = 0.0
            comp.proj[:nf][done_sel] = np.inf
            for r in np.unique(rows):
                if comp.mult[r] == 0:
                    self._deactivate_pair(int(comp.row_pair[r]), comp)
            for fid in finished:
                self._complete_flow(int(fid), now)
            if comp.live_rows == 0:
                # fully drained: every link was already freed by
                # _deactivate_pair, the component just retires
                comp.alive = False
            else:
                if comp.live_flows * 2 < comp.n_flows:
                    comp.compact_flows(remaining)
                if (comp.live_rows * 2 < comp.n_rows
                        and comp.n_rows > 8):
                    comp.compact_rows()
                touched.append(comp)

        # local (route-less) flows: instantaneous once released
        local_done: list[int] = []
        while local_heap and local_heap[0][0] <= now:
            _, fid = heapq.heappop(local_heap)
            local_done.append(fid)
        if local_done:
            set_changed = True
            for fid in local_done:
                remaining[fid] = np.inf
                self._complete_flow(fid, now)

        # 2) task completions
        while finish_heap and finish_heap[0][0] <= now + _TIME_EPS:
            _, name = heapq.heappop(finish_heap)
            self._finish_task(name, now)

        # 3) flow releases
        while release_heap and release_heap[0][0] <= now + _TIME_EPS:
            _, fid = heapq.heappop(release_heap)
            set_changed = True
            pid = int(self.pair_of[fid])
            if not self.pair_routes[pid]:
                # local pair: completes at the next event
                heapq.heappush(local_heap, (now, fid))
                continue
            cid = self.comp_of_pair[pid]
            if cid == -1:
                comp, row = self._activate_pair(pid, now)
            else:
                comp = comps[self._find(int(cid))]
                self._materialize(comp, now)
                comp.dirty = True
                row = comp.pair_rows[pid]
            comp.mult[row] += 1
            comp.add_flow(fid, row)
            if comp not in touched:
                touched.append(comp)

        # 4) newly startable tasks
        self._start_ready(now)

        # 5) re-solve: only dirty components (lazy) — or, on the
        # full-solve oracle, every live component (see the batch engine)
        if set_changed:
            self.solves_full += 1
            if lazy:
                for comp in touched:
                    if comp.alive and comp.dirty:
                        self._solve(comp, now)
            else:
                for comp in comps:
                    if not comp.alive or not comp.live_rows:
                        continue
                    if comp.dirty:
                        self._solve(comp, now)
                    else:
                        comp.rates = self._comp_waterfill(comp)

    # ------------------------------------------------------------------ #
    # public driving interface
    # ------------------------------------------------------------------ #
    def advance_until(self, t: float) -> None:
        """Process every pending event at or before ``t``; the virtual
        clock ends at ``max(now, t)``.  Idle gaps just advance the clock —
        components carry their own materialisation times."""
        if t < self.now - _TIME_EPS:
            raise ValueError(f"cannot rewind from t={self.now} to t={t}")
        with np.errstate(divide="ignore", invalid="ignore"):
            while True:
                t_next = self._peek_time()
                if t_next > t:
                    break
                self.now = t_next
                self._step()
        if t > self.now:
            self.now = t

    def drain(self) -> None:
        """Run the event loop until every injected task has finished."""
        with np.errstate(divide="ignore", invalid="ignore"):
            while len(self.done_tasks) < self.total:
                t_next = self._peek_time()
                if not math.isfinite(t_next):  # pragma: no cover - deadlock
                    raise RuntimeError(
                        f"simulation stalled at t={self.now:g}: "
                        f"{self.total - len(self.done_tasks)} tasks never "
                        f"became runnable")
                self.now = t_next
                self._step()

    def pop_completed_jobs(self) -> list[str]:
        """Job ids that finished since the last call (completion order)."""
        out = self._newly_completed
        self._newly_completed = []
        return out

    @property
    def idle(self) -> bool:
        return len(self.done_tasks) == self.total

    def makespan(self) -> float:
        """Span from the earliest task start to the latest finish."""
        if not self.traces:
            return 0.0
        return (max(tr.finish for tr in self.traces.values())
                - min(tr.start for tr in self.traces.values()))
