"""The online simulator: admit → schedule → inject, per arrival.

:class:`OnlineSimulator` turns the batch two-step pipeline into an
open-system loop over a :class:`~repro.online.stream.JobStream`:

1. **advance** the live fluid engine to the job's arrival time
   (in-flight flows progress, tasks finish, completed jobs retire);
2. **admit** — the pluggable :mod:`~repro.online.admission` policy sees
   the arrival and the residual platform state;
3. **schedule** — the job's own two-step pipeline (allocator from
   :data:`repro.registry.allocators`, then list/RATS mapping through
   :data:`repro.registry.schedulers`) runs against the *residual*
   processor availability via the schedulers' ``proc_release`` seed, so
   the mapping prices queueing behind earlier jobs instead of assuming
   an empty platform;
4. **inject** the scheduled job into the
   :class:`~repro.online.live.LiveFluidEngine` — its flows join the live
   component registry and only touched components re-solve.

With every arrival at t=0 and accept-all admission, steps 3–4 reduce
exactly to the batch pipeline (an all-zero ``proc_release`` is the batch
default; injection into an empty engine is the batch prime), which is the
bridge behind the t=0 byte-equivalence test.

Residual availability is the *scheduler's estimated* finish per
processor — the same quantity batch list scheduling tracks in
``proc_avail`` — not the simulated one: the online scheduler plans with
the information a real runtime has at admission time, and the gap between
plan and fluid-simulated reality surfaces per job as
``JobRecord.est_makespan`` vs actual span (§IV-D, per job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.experiments.runner import ExperimentRunner
from repro.online.admission import AdmissionPolicy, admission_from_spec
from repro.online.live import LiveFluidEngine
from repro.online.metrics import JobRecord, OnlineMetrics
from repro.online.stream import JobArrival, JobStream
from repro.registry import schedulers
from repro.scheduling.schedule import Schedule

__all__ = ["OnlineSimulator", "OnlineResult", "ResidualState"]


@dataclass
class ResidualState:
    """What admission and scheduling see of the platform at one instant."""

    now: float
    proc_avail: list[float]      # estimated earliest availability per proc
    in_flight: set[str]          # admitted job ids not yet completed


@dataclass
class OnlineResult:
    """Outcome of driving one stream through the online simulator."""

    records: list[JobRecord]
    metrics: OnlineMetrics
    makespan: float              # span of all executed tasks
    events: int
    solves_full: int
    solves_component: int
    splits: int = 0              # dynamic component splits performed

    @property
    def n_jobs(self) -> int:
        return len(self.records)


@dataclass
class _PendingJob:
    arrival: JobArrival
    est_makespan: float


class OnlineSimulator:
    """Drive arrivals through admit → residual schedule → live injection.

    Parameters
    ----------
    platform:
        The shared cluster or multi-cluster platform.
    admission:
        An :class:`~repro.online.admission.AdmissionPolicy` or its spec
        string (``"accept-all"``, ``"queue-cap:N"``,
        ``"load-shed:SECONDS"``).
    slo:
        JCT threshold (seconds) for the attainment roll-up, optional.
    lazy / local_index / split_threshold / collect_flow_traces:
        Forwarded to the :class:`~repro.online.live.LiveFluidEngine`.
    """

    def __init__(self, platform, *,
                 admission: AdmissionPolicy | str = "accept-all",
                 slo: float | None = None,
                 lazy: bool = True,
                 local_index: bool = True,
                 split_threshold: float | None = 0.5,
                 collect_flow_traces: bool = False) -> None:
        self.platform = platform
        self.admission = admission_from_spec(admission)
        self.slo = slo
        self.engine = LiveFluidEngine(platform, lazy=lazy,
                                      local_index=local_index,
                                      split_threshold=split_threshold,
                                      collect_flow_traces=collect_flow_traces)
        # graph / allocation / redistribution caches, shared across jobs
        # exactly as a campaign runner shares them across cells
        self._pipeline = ExperimentRunner(simulate_schedules=False,
                                          record_timings=False)
        self._proc_avail: list[float] = [0.0] * platform.num_procs
        self._in_flight: set[str] = set()
        self._pending: dict[str, _PendingJob] = {}
        self._order: list[str] = []                  # arrival order
        self._records: dict[str, JobRecord] = {}

    # ------------------------------------------------------------------ #
    def residual_state(self) -> ResidualState:
        return ResidualState(now=self.engine.now,
                             proc_avail=list(self._proc_avail),
                             in_flight=set(self._in_flight))

    def _sync_completions(self) -> None:
        """Fold engine-side job completions into final records."""
        for job_id in self.engine.pop_completed_jobs():
            pending = self._pending.pop(job_id)
            state = self.engine.jobs[job_id]
            self._in_flight.discard(job_id)
            self._records[job_id] = JobRecord(
                job_id=job_id,
                scenario=pending.arrival.scenario.scenario_id,
                algorithm=pending.arrival.spec.label,
                arrival=pending.arrival.arrival_time,
                admitted=True,
                start=state.start,
                completion=state.completion,
                est_makespan=pending.est_makespan,
            )

    def _schedule_job(self, job: JobArrival) -> Schedule:
        """The batch two-step pipeline, seeded with residual availability."""
        platform = self.platform
        scenario, spec = job.scenario, job.spec
        graph = self._pipeline.graph_for(scenario)
        model = platform.performance_model()
        redist = self._pipeline.redist_for(platform)
        allocation = self._pipeline.allocation_for(scenario, platform,
                                                   spec.allocator)

        now = self.engine.now
        release = [max(now, t) for t in self._proc_avail]
        kind = getattr(platform, "scheduler_kind", "single")
        prefix = "" if kind == "single" else f"{kind}-"
        if spec.is_adaptive:
            params = spec.resolve_params(platform.name, scenario.family)
            assert params is not None
            scheduler = schedulers.build(
                f"{prefix}rats", graph, platform, model, allocation,
                params=params, redist=redist, proc_release=release)
        else:
            scheduler = schedulers.build(
                f"{prefix}list", graph, platform, model, allocation,
                redist=redist, proc_release=release)
        return scheduler.run()

    # ------------------------------------------------------------------ #
    def submit(self, job: JobArrival) -> bool:
        """Advance to the job's arrival, then admit/schedule/inject.

        Returns whether the job was admitted; a rejected job's record is
        final immediately.
        """
        if job.job_id in self._records or job.job_id in self._pending:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self.engine.advance_until(job.arrival_time)
        self._sync_completions()
        self._order.append(job.job_id)
        if not self.admission.admit(job, self.residual_state()):
            self._records[job.job_id] = JobRecord(
                job_id=job.job_id,
                scenario=job.scenario.scenario_id,
                algorithm=job.spec.label,
                arrival=job.arrival_time,
                admitted=False,
            )
            return False
        schedule = self._schedule_job(job)
        for entry in schedule.entries.values():
            for p in entry.procs:
                if entry.finish > self._proc_avail[p]:
                    self._proc_avail[p] = entry.finish
        self._pending[job.job_id] = _PendingJob(
            arrival=job, est_makespan=schedule.makespan)
        self._in_flight.add(job.job_id)
        self.engine.inject(job.job_id, schedule, job.arrival_time)
        return True

    def advance_until(self, t: float) -> list[JobRecord]:
        """Run the engine to ``t``; returns records newly finalised."""
        before = set(self._records)
        self.engine.advance_until(t)
        self._sync_completions()
        return [self._records[j] for j in self._order
                if j in self._records and j not in before]

    def drain(self) -> None:
        """Run every admitted job to completion."""
        self.engine.drain()
        self._sync_completions()

    # ------------------------------------------------------------------ #
    def run(self, stream: JobStream | Iterable[JobArrival], *,
            drain: bool = True) -> OnlineResult:
        """Drive a whole stream; returns records in arrival order."""
        for job in stream:
            self.submit(job)
        if drain:
            self.drain()
        return self.result()

    def records(self) -> list[JobRecord]:
        """Records finalised so far, in arrival order."""
        return [self._records[j] for j in self._order if j in self._records]

    def result(self) -> OnlineResult:
        """Roll up the records finalised so far (arrival order)."""
        records = self.records()
        return OnlineResult(
            records=records,
            metrics=OnlineMetrics.from_records(records, slo=self.slo),
            makespan=self.engine.makespan(),
            events=self.engine.events,
            solves_full=self.engine.solves_full,
            solves_component=self.engine.solves_component,
            splits=self.engine.splits,
        )
