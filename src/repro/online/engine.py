"""The online simulator: admit → schedule → inject, per arrival.

:class:`OnlineSimulator` turns the batch two-step pipeline into an
open-system loop over a :class:`~repro.online.stream.JobStream`:

1. **advance** the live fluid engine to the job's arrival time
   (in-flight flows progress, tasks finish, completed jobs retire);
2. **admit** — the pluggable :mod:`~repro.online.admission` policy sees
   the arrival and the residual platform state;
3. **schedule** — the job's own two-step pipeline (allocator from
   :data:`repro.registry.allocators`, then list/RATS mapping through
   :data:`repro.registry.schedulers`) runs against the *residual*
   processor availability via the schedulers' ``proc_release`` seed, so
   the mapping prices queueing behind earlier jobs instead of assuming
   an empty platform;
4. **inject** the scheduled job into the
   :class:`~repro.online.live.LiveFluidEngine` — its flows join the live
   component registry and only touched components re-solve.

With every arrival at t=0 and accept-all admission, steps 3–4 reduce
exactly to the batch pipeline (an all-zero ``proc_release`` is the batch
default; injection into an empty engine is the batch prime), which is the
bridge behind the t=0 byte-equivalence test.

Residual availability is the *scheduler's estimated* finish per
processor — the same quantity batch list scheduling tracks in
``proc_avail`` — not the simulated one: the online scheduler plans with
the information a real runtime has at admission time, and the gap between
plan and fluid-simulated reality surfaces per job as
``JobRecord.est_makespan`` vs actual span (§IV-D, per job).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.experiments.runner import ExperimentRunner
from repro.online.admission import (AcceptAll, AdmissionPolicy,
                                    admission_from_spec)
from repro.online.live import LiveFluidEngine
from repro.online.metrics import JobRecord, OnlineMetrics
from repro.online.stream import JobArrival, JobStream
from repro.registry import schedulers
from repro.scheduling.avail import AvailabilityIndex
from repro.scheduling.schedule import Schedule

__all__ = ["OnlineSimulator", "OnlineResult", "ResidualState"]


@dataclass
class ResidualState:
    """What admission and scheduling see of the platform at one instant."""

    now: float
    proc_avail: list[float]      # estimated earliest availability per proc
    in_flight: set[str]          # admitted job ids not yet completed


@dataclass
class OnlineResult:
    """Outcome of driving one stream through the online simulator."""

    records: list[JobRecord]
    metrics: OnlineMetrics
    makespan: float              # span of all executed tasks
    events: int
    solves_full: int
    solves_component: int
    splits: int = 0              # dynamic component splits performed
    sched_s: float = 0.0         # wall time spent in two-step scheduling
    sim_s: float = 0.0           # wall time spent advancing the engine
    solve_s: float = 0.0         # sim_s share spent in Max-Min solves
    event_s: float = 0.0         # sim_s share spent in the event loop

    @property
    def n_jobs(self) -> int:
        return len(self.records)


@dataclass
class _PendingJob:
    arrival: JobArrival
    est_makespan: float


class OnlineSimulator:
    """Drive arrivals through admit → residual schedule → live injection.

    Parameters
    ----------
    platform:
        The shared cluster or multi-cluster platform.
    admission:
        An :class:`~repro.online.admission.AdmissionPolicy` or its spec
        string (``"accept-all"``, ``"queue-cap:N"``,
        ``"load-shed:SECONDS"``).
    slo:
        JCT threshold (seconds) for the attainment roll-up, optional.
    lazy / local_index / split_threshold / collect_flow_traces:
        Forwarded to the :class:`~repro.online.live.LiveFluidEngine`.
    avail_index:
        Keep one warm :class:`~repro.scheduling.avail.AvailabilityIndex`
        alive *across* arrivals (default).  Each job's scheduler reseeds
        it to the clamped residual view instead of re-sorting 24k
        processors from scratch; schedules are byte-identical either
        way.  ``False`` hands every job the reference scan path.
    vector_price:
        Forwarded to the schedulers' batched candidate pricing knob.
    solver_threads:
        Forwarded to the :class:`~repro.online.live.LiveFluidEngine`:
        how many threads solve independent dirty components per event
        (default ``None`` reads ``REPRO_SOLVER_THREADS``, falling back
        to 1 — the serial path, byte-for-byte).
    pipeline:
        Overlap the two-step scheduling of each admitted job with the
        fluid engine's advance to its arrival time (default off).  The
        schedule of job *i* depends only on its arrival time and the
        *scheduler-estimated* availability left by jobs ``< i`` — never
        on engine state — so results are byte-identical to the serial
        loop; requires accept-all admission (a state-inspecting policy
        would need the engine advanced first) and a time-ordered stream.
    """

    def __init__(self, platform, *,
                 admission: AdmissionPolicy | str = "accept-all",
                 slo: float | None = None,
                 lazy: bool = True,
                 local_index: bool = True,
                 split_threshold: float | None = 0.5,
                 collect_flow_traces: bool = False,
                 avail_index: bool = True,
                 vector_price: bool = True,
                 solver_threads: int | None = None,
                 pipeline: bool = False) -> None:
        self.platform = platform
        self.admission = admission_from_spec(admission)
        self.slo = slo
        if pipeline and not isinstance(self.admission, AcceptAll):
            raise ValueError(
                "pipeline=True schedules ahead of the engine clock, so "
                "admission cannot inspect residual state; it requires "
                "the accept-all policy")
        self.pipelined = pipeline
        self.vector_price = vector_price
        self._avail_index = (AvailabilityIndex.for_platform(platform)
                             if avail_index else None)
        self.engine = LiveFluidEngine(platform, lazy=lazy,
                                      local_index=local_index,
                                      split_threshold=split_threshold,
                                      collect_flow_traces=collect_flow_traces,
                                      solver_threads=solver_threads)
        # graph / allocation / redistribution caches, shared across jobs
        # exactly as a campaign runner shares them across cells
        self._pipeline = ExperimentRunner(simulate_schedules=False,
                                          record_timings=False)
        self._proc_avail: list[float] = [0.0] * platform.num_procs
        self._in_flight: set[str] = set()
        self._pending: dict[str, _PendingJob] = {}
        self._order: list[str] = []                  # arrival order
        self._records: dict[str, JobRecord] = {}
        self.sched_s = 0.0
        self.sim_s = 0.0

    # ------------------------------------------------------------------ #
    def residual_state(self) -> ResidualState:
        return ResidualState(now=self.engine.now,
                             proc_avail=list(self._proc_avail),
                             in_flight=set(self._in_flight))

    def _sync_completions(self) -> None:
        """Fold engine-side job completions into final records."""
        for job_id in self.engine.pop_completed_jobs():
            pending = self._pending.pop(job_id)
            state = self.engine.jobs[job_id]
            self._in_flight.discard(job_id)
            self._records[job_id] = JobRecord(
                job_id=job_id,
                scenario=pending.arrival.scenario.scenario_id,
                algorithm=pending.arrival.spec.label,
                arrival=pending.arrival.arrival_time,
                admitted=True,
                start=state.start,
                completion=state.completion,
                est_makespan=pending.est_makespan,
            )

    def _schedule_job(self, job: JobArrival,
                      now: float | None = None) -> Schedule:
        """The batch two-step pipeline, seeded with residual availability.

        ``now`` defaults to the engine clock; the pipelined path passes
        the job's arrival time instead (the two coincide once the engine
        catches up — the scheduler never reads engine state).
        """
        t0 = time.perf_counter()
        platform = self.platform
        scenario, spec = job.scenario, job.spec
        graph = self._pipeline.graph_for(scenario)
        model = platform.performance_model()
        redist = self._pipeline.redist_for(platform)
        allocation = self._pipeline.allocation_for(scenario, platform,
                                                   spec.allocator)

        if now is None:
            now = self.engine.now
        release = [max(now, t) for t in self._proc_avail]
        avail_index = (self._avail_index if self._avail_index is not None
                       else False)
        kind = getattr(platform, "scheduler_kind", "single")
        prefix = "" if kind == "single" else f"{kind}-"
        if spec.is_adaptive:
            params = spec.resolve_params(platform.name, scenario.family)
            assert params is not None
            scheduler = schedulers.build(
                f"{prefix}rats", graph, platform, model, allocation,
                params=params, redist=redist, proc_release=release,
                avail_index=avail_index, vector_price=self.vector_price)
        else:
            scheduler = schedulers.build(
                f"{prefix}list", graph, platform, model, allocation,
                redist=redist, proc_release=release,
                avail_index=avail_index, vector_price=self.vector_price)
        schedule = scheduler.run()
        self.sched_s += time.perf_counter() - t0
        return schedule

    def _advance_engine(self, t: float) -> None:
        t0 = time.perf_counter()
        self.engine.advance_until(t)
        self.sim_s += time.perf_counter() - t0

    # ------------------------------------------------------------------ #
    def submit(self, job: JobArrival) -> bool:
        """Advance to the job's arrival, then admit/schedule/inject.

        Returns whether the job was admitted; a rejected job's record is
        final immediately.
        """
        if job.job_id in self._records or job.job_id in self._pending:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self._advance_engine(job.arrival_time)
        self._sync_completions()
        self._order.append(job.job_id)
        if not self.admission.admit(job, self.residual_state()):
            self._records[job.job_id] = JobRecord(
                job_id=job.job_id,
                scenario=job.scenario.scenario_id,
                algorithm=job.spec.label,
                arrival=job.arrival_time,
                admitted=False,
            )
            return False
        schedule = self._schedule_job(job)
        for entry in schedule.entries.values():
            for p in entry.procs:
                if entry.finish > self._proc_avail[p]:
                    self._proc_avail[p] = entry.finish
        self._pending[job.job_id] = _PendingJob(
            arrival=job, est_makespan=schedule.makespan)
        self._in_flight.add(job.job_id)
        self.engine.inject(job.job_id, schedule, job.arrival_time)
        return True

    def advance_until(self, t: float) -> list[JobRecord]:
        """Run the engine to ``t``; returns records newly finalised."""
        before = set(self._records)
        self._advance_engine(t)
        self._sync_completions()
        return [self._records[j] for j in self._order
                if j in self._records and j not in before]

    def drain(self) -> None:
        """Run every admitted job to completion."""
        t0 = time.perf_counter()
        self.engine.drain()
        self.sim_s += time.perf_counter() - t0
        self._sync_completions()

    # ------------------------------------------------------------------ #
    def run(self, stream: JobStream | Iterable[JobArrival], *,
            drain: bool = True) -> OnlineResult:
        """Drive a whole stream; returns records in arrival order."""
        if self.pipelined:
            self._run_pipelined(stream)
        else:
            for job in stream:
                self.submit(job)
        if drain:
            self.drain()
        return self.result()

    def _run_pipelined(self, stream: JobStream | Iterable[JobArrival]) -> None:
        """Overlap each job's scheduling with the engine's advance.

        The engine catches up to a job's arrival on a worker thread
        while the main thread runs the job's two-step schedule — legal
        because residual availability is the *scheduler's* estimate,
        maintained here, never read from the engine.  Everything that
        does touch engine state (completion sync, injection) happens
        after the join, in the exact order of the serial loop, so the
        records, events and makespan are byte-identical to
        ``pipeline=False``.
        """
        now = self.engine.now
        for job in stream:
            if job.job_id in self._records or job.job_id in self._pending:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            if job.arrival_time < now:
                raise ValueError(
                    f"pipeline=True needs a time-ordered stream; "
                    f"{job.job_id!r} arrives at {job.arrival_time} < {now}")
            now = job.arrival_time
            worker = threading.Thread(
                target=self._advance_engine, args=(now,),
                name="repro-online-advance")
            worker.start()
            try:
                schedule = self._schedule_job(job, now=now)
            finally:
                worker.join()
            self._sync_completions()
            self._order.append(job.job_id)
            # admission is accept-all by construction (checked in
            # __init__): admit unconditionally without building a
            # residual snapshot the policy would ignore
            for entry in schedule.entries.values():
                for p in entry.procs:
                    if entry.finish > self._proc_avail[p]:
                        self._proc_avail[p] = entry.finish
            self._pending[job.job_id] = _PendingJob(
                arrival=job, est_makespan=schedule.makespan)
            self._in_flight.add(job.job_id)
            self.engine.inject(job.job_id, schedule, job.arrival_time)

    def records(self) -> list[JobRecord]:
        """Records finalised so far, in arrival order."""
        return [self._records[j] for j in self._order if j in self._records]

    def result(self) -> OnlineResult:
        """Roll up the records finalised so far (arrival order)."""
        records = self.records()
        return OnlineResult(
            records=records,
            metrics=OnlineMetrics.from_records(records, slo=self.slo),
            makespan=self.engine.makespan(),
            events=self.engine.events,
            solves_full=self.engine.solves_full,
            solves_component=self.engine.solves_component,
            splits=self.engine.splits,
            sched_s=self.sched_s,
            sim_s=self.sim_s,
            solve_s=self.engine.solve_s,
            event_s=self.engine.event_s,
        )
