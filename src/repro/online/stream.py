"""Workload sources for the online mode: deterministic job streams.

A *job* is one DAG-application instance — a
:class:`~repro.experiments.scenarios.Scenario` plus the
:class:`~repro.experiments.runner.AlgorithmSpec` that should schedule it —
stamped with an arrival time.  A :class:`JobStream` yields
:class:`JobArrival` records in non-decreasing arrival order, and every
built-in stream is a pure function of its parameters and seed
(:func:`repro.utils.rng.spawn_rng`), so replaying a stream twice produces
bit-identical arrivals — the property the determinism tests and the
``repro replay-stream`` CI check assert.

Three generators ship:

* :class:`PoissonStream` — exponential inter-arrivals at a constant rate;
* :class:`BurstStream` — an MMPP-style on/off process: exponential on and
  off phase durations, each phase with its own Poisson rate (``rate_off
  = 0`` gives true silences), the classic bursty-traffic model;
* :class:`ReplayStream` — an explicit arrival list (a recorded trace, a
  service transcript, a hand-written test fixture).

:func:`stream_from_spec` builds any of them from a JSON-able dict — the
format ``repro replay-stream`` reads from disk and ``repro serve`` can be
pointed at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.experiments.runner import AlgorithmSpec
from repro.experiments.scenarios import Scenario

__all__ = [
    "JobArrival",
    "JobStream",
    "PoissonStream",
    "BurstStream",
    "ReplayStream",
    "stream_from_spec",
]


@dataclass(frozen=True)
class JobArrival:
    """One job instance entering the system at ``arrival_time``."""

    job_id: str
    arrival_time: float
    scenario: Scenario
    spec: AlgorithmSpec

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(
                f"job {self.job_id!r}: negative arrival time "
                f"{self.arrival_time}")


@runtime_checkable
class JobStream(Protocol):
    """What the online engine consumes: an iterable of arrivals.

    Iterating must be repeatable (two iterations yield identical
    arrivals) and arrivals must come in non-decreasing ``arrival_time``
    order — both properties hold for every stream in this module.
    """

    def __iter__(self) -> Iterator[JobArrival]: ...


def _cycle_jobs(index: int, scenarios: Sequence[Scenario],
                specs: Sequence[AlgorithmSpec]) -> tuple[Scenario,
                                                         AlgorithmSpec]:
    return (scenarios[index % len(scenarios)],
            specs[index % len(specs)])


class _GeneratedStream:
    """Shared plumbing of the seeded generators (Poisson / burst)."""

    kind = "stream"

    def __init__(self, *, n_jobs: int, scenarios: Sequence[Scenario],
                 spec: AlgorithmSpec | Sequence[AlgorithmSpec],
                 seed: object = 0) -> None:
        if n_jobs < 0:
            raise ValueError("n_jobs must be >= 0")
        scenarios = list(scenarios)
        if n_jobs and not scenarios:
            raise ValueError("a non-empty stream needs at least one scenario")
        specs = ([spec] if isinstance(spec, AlgorithmSpec) else list(spec))
        if n_jobs and not specs:
            raise ValueError("a non-empty stream needs at least one spec")
        self.n_jobs = n_jobs
        self.scenarios = scenarios
        self.specs = specs
        self.seed = seed

    def _rng(self):
        from repro.utils.rng import spawn_rng

        return spawn_rng("online-stream", self.kind, self.seed)

    def _arrival_times(self) -> Iterator[float]:  # pragma: no cover
        raise NotImplementedError

    def __iter__(self) -> Iterator[JobArrival]:
        for i, t in enumerate(self._arrival_times()):
            scenario, spec = _cycle_jobs(i, self.scenarios, self.specs)
            yield JobArrival(job_id=f"{self.kind}-{i:05d}",
                             arrival_time=float(t),
                             scenario=scenario, spec=spec)


class PoissonStream(_GeneratedStream):
    """``n_jobs`` arrivals with exponential inter-arrival times.

    ``rate`` is the arrival intensity λ in jobs per simulated second.
    Scenarios (and specs, if several are given) are assigned round-robin,
    so a heterogeneous job mix is one list away.
    """

    kind = "poisson"

    def __init__(self, *, rate: float, n_jobs: int,
                 scenarios: Sequence[Scenario],
                 spec: AlgorithmSpec | Sequence[AlgorithmSpec],
                 seed: object = 0) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        super().__init__(n_jobs=n_jobs, scenarios=scenarios, spec=spec,
                         seed=seed)
        self.rate = float(rate)

    def _arrival_times(self) -> Iterator[float]:
        rng = self._rng()
        t = 0.0
        for _ in range(self.n_jobs):
            t += rng.exponential(1.0 / self.rate)
            yield t


class BurstStream(_GeneratedStream):
    """MMPP-style on/off arrivals: bursts at ``rate_on``, lulls at
    ``rate_off``.

    The modulating chain alternates *on* and *off* phases with
    exponential durations (``mean_on`` / ``mean_off`` seconds); within a
    phase arrivals are Poisson at the phase's rate.  Phase switches
    exploit the memorylessness of the exponential: a candidate arrival
    that would cross the phase boundary is discarded and redrawn at the
    boundary under the new rate — the textbook MMPP construction.
    ``rate_off = 0`` (the default) yields strict silences between bursts.
    """

    kind = "burst"

    def __init__(self, *, rate_on: float, n_jobs: int,
                 scenarios: Sequence[Scenario],
                 spec: AlgorithmSpec | Sequence[AlgorithmSpec],
                 rate_off: float = 0.0, mean_on: float = 1.0,
                 mean_off: float = 1.0, seed: object = 0) -> None:
        if rate_on <= 0:
            raise ValueError("rate_on must be > 0")
        if rate_off < 0:
            raise ValueError("rate_off must be >= 0")
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("phase durations must be > 0")
        super().__init__(n_jobs=n_jobs, scenarios=scenarios, spec=spec,
                         seed=seed)
        self.rate_on = float(rate_on)
        self.rate_off = float(rate_off)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)

    def _arrival_times(self) -> Iterator[float]:
        rng = self._rng()
        t = 0.0
        on = True
        phase_end = rng.exponential(self.mean_on)
        emitted = 0
        while emitted < self.n_jobs:
            rate = self.rate_on if on else self.rate_off
            if rate > 0:
                candidate = t + rng.exponential(1.0 / rate)
            else:
                candidate = float("inf")
            if candidate <= phase_end:
                t = candidate
                emitted += 1
                yield t
            else:
                t = phase_end
                on = not on
                phase_end = t + rng.exponential(
                    self.mean_on if on else self.mean_off)


class ReplayStream:
    """An explicit, pre-built arrival list (trace replay).

    Arrivals must already be in non-decreasing time order — a recorded
    trace always is, and requiring it keeps the engine's single forward
    pass honest.
    """

    kind = "replay"

    def __init__(self, arrivals: Iterable[JobArrival]) -> None:
        self.arrivals = list(arrivals)
        seen: set[str] = set()
        for prev, cur in zip(self.arrivals, self.arrivals[1:]):
            if cur.arrival_time < prev.arrival_time:
                raise ValueError(
                    f"arrivals out of order: {cur.job_id!r} at "
                    f"{cur.arrival_time} after {prev.job_id!r} at "
                    f"{prev.arrival_time}")
        for a in self.arrivals:
            if a.job_id in seen:
                raise ValueError(f"duplicate job id {a.job_id!r}")
            seen.add(a.job_id)

    @property
    def n_jobs(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[JobArrival]:
        return iter(self.arrivals)


# --------------------------------------------------------------------- #
# spec-file construction (repro replay-stream / repro serve)
# --------------------------------------------------------------------- #
def _scenario_from_workload(workload: Any, sample: int = 0) -> Scenario:
    """One :class:`Scenario` from a ``repro run``-style workload dict."""
    from dataclasses import fields

    if isinstance(workload, Scenario):
        return workload
    if not isinstance(workload, dict):
        raise ValueError(f"workload must be a dict, got {workload!r}")
    workload = dict(workload)
    family = workload.pop("family", None)
    if family is None:
        raise ValueError("workload needs a 'family' key")
    sample = int(workload.pop("sample", sample))
    shape_fields = {f.name for f in fields(Scenario)} - {"family", "sample",
                                                         "extras"}
    shape = {k: v for k, v in workload.items() if k in shape_fields}
    extras = tuple(sorted((k, v) for k, v in workload.items()
                          if k not in shape_fields))
    return Scenario(family=family, sample=sample, extras=extras, **shape)


def _spec_from_algorithm(algorithm: Any) -> AlgorithmSpec:
    from repro.experiments.experiment import as_algorithm_spec

    return as_algorithm_spec(algorithm)


_STREAM_KEYS = frozenset((
    "kind", "rate", "rate_on", "rate_off", "mean_on", "mean_off", "jobs",
    "seed", "samples", "workloads", "workload", "algorithm", "algorithms",
    "arrivals",
))


def stream_from_spec(spec: dict) -> JobStream:
    """Build a stream from a JSON-able dict (the on-disk stream format).

    Common keys: ``kind`` (``"poisson"`` / ``"burst"`` / ``"replay"``),
    ``workloads`` (list of ``repro run``-style workload dicts, assigned
    round-robin; ``workload`` accepts a single one), ``algorithm`` (or a
    round-robin ``algorithms`` list), ``samples`` (distinct DAG samples
    drawn per workload, default 1).  Generated kinds add ``jobs``,
    ``seed`` and their rate parameters; ``replay`` instead takes
    ``arrivals``: a list of ``{"t": …, "workload": …, "algorithm": …}``
    records.
    """
    if not isinstance(spec, dict):
        raise ValueError("stream spec must be a dict")
    unknown = sorted(set(spec) - _STREAM_KEYS)
    if unknown:
        raise ValueError(f"unknown stream spec key(s) {unknown}; "
                         f"allowed: {sorted(_STREAM_KEYS)}")
    kind = spec.get("kind", "poisson")

    if kind == "replay":
        arrivals = []
        for i, row in enumerate(spec.get("arrivals", ())):
            arrivals.append(JobArrival(
                job_id=str(row.get("job_id", f"replay-{i:05d}")),
                arrival_time=float(row["t"]),
                scenario=_scenario_from_workload(
                    row["workload"], sample=int(row.get("sample", 0))),
                spec=_spec_from_algorithm(row.get("algorithm", "hcpa"))))
        return ReplayStream(arrivals)

    workloads = spec.get("workloads")
    if workloads is None:
        workloads = [spec.get("workload", {"family": "strassen"})]
    samples = int(spec.get("samples", 1))
    if samples < 1:
        raise ValueError("samples must be >= 1")
    scenarios = [_scenario_from_workload(w, sample=s)
                 for s in range(samples) for w in workloads]
    algorithms = spec.get("algorithms")
    if algorithms is None:
        algorithms = [spec.get("algorithm", "hcpa")]
    specs = [_spec_from_algorithm(a) for a in algorithms]
    common = dict(n_jobs=int(spec.get("jobs", 100)), scenarios=scenarios,
                  spec=specs, seed=spec.get("seed", 0))

    if kind == "poisson":
        return PoissonStream(rate=float(spec.get("rate", 1.0)), **common)
    if kind == "burst":
        return BurstStream(rate_on=float(spec.get("rate_on", 1.0)),
                           rate_off=float(spec.get("rate_off", 0.0)),
                           mean_on=float(spec.get("mean_on", 1.0)),
                           mean_off=float(spec.get("mean_off", 1.0)),
                           **common)
    raise ValueError(f"unknown stream kind {kind!r}; "
                     "expected poisson, burst or replay")
