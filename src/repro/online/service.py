"""``repro serve``: a stdlib-only asyncio front-end for the online engine.

The service accepts newline-delimited JSON over a local TCP socket, runs
each submission through the :class:`~repro.online.engine.OnlineSimulator`
(admission → residual schedule → live injection) and *streams* each job's
final :class:`~repro.online.metrics.JobRecord` back to the connection
that submitted it as soon as the simulated job completes.

Wire protocol (one JSON object per line, both directions)
---------------------------------------------------------
Requests carry an ``op``:

``{"op": "submit", "workload": {...}, "algorithm": "hcpa", "t": 1.5}``
    Submit one job.  ``workload`` is a ``repro run``-style dict
    (``family`` + shape fields); ``algorithm`` any
    :func:`~repro.experiments.experiment.as_algorithm_spec` name;
    ``job_id`` and ``sample`` are optional.  ``t`` is the virtual arrival
    time — in the default virtual-time mode it defaults to the current
    virtual now (wall mode derives it from the wall clock instead; see
    below).  Reply: ``{"type": "ack", "job_id": ..., "admitted": ...}``.
``{"op": "advance", "t": 30.0}``
    Run the simulation to virtual time ``t``; completed jobs stream out.
    Reply: ``{"type": "advanced", "now": ...}``.
``{"op": "drain"}``
    Run every admitted job to completion.  Reply after the records:
    ``{"type": "drained", "metrics": {...}}``.
``{"op": "stats"}``
    Reply: ``{"type": "stats", "now": ..., "in_flight": ...,
    "metrics": {...}}``.
``{"op": "shutdown"}``
    Reply ``{"type": "bye"}`` and stop the server (used by CI for a
    clean teardown).

Completion records arrive interleaved, each as
``{"type": "record", "record": {...}}`` on the submitting connection;
errors as ``{"type": "error", "error": "..."}``.

Time
----
Virtual mode (default) is **deterministic**: the clock only moves when a
submission, ``advance`` or ``drain`` moves it, so a scripted session —
like the CI smoke job — produces identical records on every run.  Wall
mode (``wall=True``) stamps arrivals with real elapsed seconds times
``time_scale`` for interactive use.

Scheduling and simulation run inline on the event loop: requests
serialise, which is exactly the determinism the service wants — this is a
simulation front-end, not a throughput server.

:func:`submit_jobs` is the synchronous client helper the tests and the CI
smoke job drive the server with.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import socket
import time
from typing import Iterable, Sequence

from repro.online.engine import OnlineSimulator
from repro.online.metrics import JobRecord
from repro.online.stream import (
    JobArrival,
    _scenario_from_workload,
    _spec_from_algorithm,
)

__all__ = ["OnlineService", "serve", "submit_jobs"]


class OnlineService:
    """Protocol handler binding one :class:`OnlineSimulator` to a socket."""

    def __init__(self, sim: OnlineSimulator, *, wall: bool = False,
                 time_scale: float = 1.0) -> None:
        self.sim = sim
        self.wall = wall
        self.time_scale = float(time_scale)
        self._t0: float | None = None
        self._n_submitted = 0
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._dispatched: set[str] = set()
        self.shutdown = asyncio.Event()

    # ------------------------------------------------------------------ #
    def _wall_now(self) -> float:
        if self._t0 is None:
            self._t0 = time.monotonic()
        return (time.monotonic() - self._t0) * self.time_scale

    def _arrival_time(self, payload: dict) -> float:
        if self.wall:
            t = self._wall_now()
        else:
            t = float(payload.get("t", self.sim.engine.now))
        # the engine cannot rewind; a late-stamped virtual arrival joins now
        return max(t, self.sim.engine.now)

    async def _dispatch_records(self) -> None:
        """Stream newly-finalised records to their submitting connections."""
        for record in self.sim.records():
            if record.job_id in self._dispatched:
                continue
            self._dispatched.add(record.job_id)
            writer = self._writers.pop(record.job_id, None)
            if writer is None or writer.is_closing():
                continue
            await _send(writer, {"type": "record",
                                 "record": dataclasses.asdict(record)})

    # ------------------------------------------------------------------ #
    def _handle_submit(self, payload: dict,
                       writer: asyncio.StreamWriter) -> dict:
        workload = payload.get("workload")
        if workload is None:
            raise ValueError("submit needs a 'workload' dict")
        scenario = _scenario_from_workload(
            workload, sample=int(payload.get("sample", 0)))
        spec = _spec_from_algorithm(payload.get("algorithm", "hcpa"))
        job_id = str(payload.get("job_id", f"srv-{self._n_submitted:05d}"))
        self._n_submitted += 1
        arrival = self._arrival_time(payload)
        job = JobArrival(job_id=job_id, arrival_time=arrival,
                         scenario=scenario, spec=spec)
        self._writers[job_id] = writer
        admitted = self.sim.submit(job)
        return {"type": "ack", "job_id": job_id, "admitted": admitted,
                "t": arrival}

    def _handle_op(self, payload: dict,
                   writer: asyncio.StreamWriter) -> dict:
        op = payload.get("op")
        if op == "submit":
            return self._handle_submit(payload, writer)
        if op == "advance":
            self.sim.advance_until(float(payload["t"]))
            return {"type": "advanced", "now": self.sim.engine.now}
        if op == "drain":
            self.sim.drain()
            return {"type": "drained",
                    "metrics": self.sim.result().metrics.as_dict()}
        if op == "stats":
            return {"type": "stats", "now": self.sim.engine.now,
                    "in_flight": len(self.sim.residual_state().in_flight),
                    "metrics": self.sim.result().metrics.as_dict()}
        if op == "shutdown":
            return {"type": "bye"}
        raise ValueError(f"unknown op {op!r}")

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while not self.shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("request must be a JSON object")
                    reply = self._handle_op(payload, writer)
                except Exception as exc:  # protocol error -> error reply
                    await _send(writer, {"type": "error", "error": str(exc)})
                    continue
                # drain/advance may have completed jobs submitted by this
                # or other connections: stream their records first, so a
                # client that drains sees all records before "drained"
                await self._dispatch_records()
                await _send(writer, reply)
                if reply["type"] == "bye":
                    self.shutdown.set()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def serve(sim: OnlineSimulator, *, host: str = "127.0.0.1",
                port: int = 0, wall: bool = False, time_scale: float = 1.0,
                ready=None) -> None:
    """Run the service until a client sends ``shutdown``.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) is called
    with the bound ``(host, port)`` once the socket is listening — the
    hook tests and the CLI use to announce the address.
    """
    service = OnlineService(sim, wall=wall, time_scale=time_scale)
    server = await asyncio.start_server(service.handle, host, port)
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    async with server:
        await service.shutdown.wait()


# --------------------------------------------------------------------- #
# synchronous client helper (tests, CI smoke job, scripting)
# --------------------------------------------------------------------- #
def submit_jobs(host: str, port: int, jobs: Iterable[dict], *,
                drain: bool = True, shutdown: bool = False,
                timeout: float = 60.0, connect_retries: int = 40,
                retry_delay: float = 0.25,
                ) -> tuple[list[dict], list[JobRecord], dict | None]:
    """Submit ``jobs`` (submit-payload dicts) to a running service.

    Connects with retries (the server may still be starting), submits
    every job, optionally drains and shuts the server down, and returns
    ``(acks, records, metrics)`` — ``metrics`` is the drain reply's
    roll-up, or ``None`` when ``drain=False``.
    """
    sock = _connect(host, port, connect_retries, retry_delay)
    acks: list[dict] = []
    records: list[JobRecord] = []
    metrics: dict | None = None
    try:
        sock.settimeout(timeout)
        rfile = sock.makefile("r", encoding="utf-8")

        def send(payload: dict) -> None:
            sock.sendall(json.dumps(payload).encode() + b"\n")

        def recv_until(final_types: Sequence[str]) -> dict:
            """Read replies, collecting streamed records on the way."""
            while True:
                line = rfile.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                reply = json.loads(line)
                if reply.get("type") == "record":
                    records.append(JobRecord(**reply["record"]))
                    continue
                if reply.get("type") == "error":
                    raise RuntimeError(f"server error: {reply['error']}")
                if reply.get("type") in final_types:
                    return reply
                raise RuntimeError(f"unexpected reply {reply!r}")

        for payload in jobs:
            send({"op": "submit", **payload})
            acks.append(recv_until(("ack",)))
        if drain:
            send({"op": "drain"})
            metrics = recv_until(("drained",))["metrics"]
        if shutdown:
            send({"op": "shutdown"})
            recv_until(("bye",))
    finally:
        sock.close()
    return acks, records, metrics


def _connect(host: str, port: int, retries: int,
             delay: float) -> socket.socket:
    last: Exception | None = None
    for _ in range(max(1, retries)):
        try:
            return socket.create_connection((host, port), timeout=delay * 4)
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise ConnectionError(
        f"cannot reach repro serve at {host}:{port}: {last}")
