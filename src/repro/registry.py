"""Pluggable component registries — the extension API of :mod:`repro`.

Every swappable building block of the reproduction is published in one of
four registries so that third-party code can add its own without touching
any ``repro`` module:

* :data:`allocators` — step-one moldable-task allocation procedures
  (``cpa`` / ``mcpa`` / ``hcpa``); a factory
  ``(graph, model, total_procs, **kw) -> AllocationResult``;
* :data:`mapping_strategies` — step-two redistribution-aware adaptation
  strategies (``delta`` / ``timecost``); a factory
  ``(params: RATSParams) -> strategy`` where the strategy exposes
  ``decide(scheduler, task) -> (MappingDecision, AdaptationRecord | None)``
  and, optionally, ``secondary_sort(scheduler, task) -> float`` for the
  §III-C ready-list tie-break;
* :data:`dag_families` — scenario DAG families (``layered`` / ``irregular``
  / ``fft`` / ``strassen``); a :class:`DagFamily` bundling
  ``build(scenario, rng) -> TaskGraph`` with an optional stable
  ``scenario_id(scenario) -> str`` formatter;
* :data:`platforms` — named cluster platforms (``chti`` / ``grillon`` /
  ``grelon``); a zero-argument factory returning a
  :class:`~repro.platforms.cluster.Cluster`.

Registering is a one-liner::

    from repro import register_allocator

    @register_allocator("greedy", description="one processor per task")
    def greedy_allocation(graph, model, total_procs, **kwargs):
        ...

Built-in components self-register when their defining module is imported;
each registry lazily imports those modules on first lookup, so
``allocators.get("hcpa")`` works without any prior ``import repro.…``.

Lookup failures raise :class:`UnknownComponentError`, which subclasses
both :class:`KeyError` and :class:`ValueError` (historical call sites
caught either) and lists the available names.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "Registry",
    "RegistryEntry",
    "DagFamily",
    "UnknownComponentError",
    "DuplicateComponentError",
    "allocators",
    "mapping_strategies",
    "dag_families",
    "platforms",
    "register_allocator",
    "register_mapping_strategy",
    "register_dag_family",
    "register_platform",
    "all_registries",
]


class UnknownComponentError(KeyError, ValueError):
    """A name was not found in a registry.

    Subclasses both ``KeyError`` (``get_cluster`` historically raised it)
    and ``ValueError`` (``RATSParams`` / ``AlgorithmSpec`` validation did).
    """

    def __init__(self, kind: str, name: str, available: Sequence[str]):
        self.kind = kind
        self.name = name
        self.available = tuple(available)
        # args must mirror __init__ so the exception survives pickling
        # (process-pool workers propagate errors by pickle round-trip)
        super().__init__(kind, name, self.available)

    def __str__(self) -> str:  # KeyError would repr() the message
        shown = ", ".join(self.available) if self.available else "(none)"
        return f"unknown {self.kind} {self.name!r}; available: {shown}"


class DuplicateComponentError(ValueError):
    """A name (or alias) is already registered."""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: a named, described factory."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class DagFamily:
    """A scenario DAG family: graph builder plus id formatter.

    ``build(scenario, rng)`` receives the (duck-typed)
    :class:`~repro.experiments.scenarios.Scenario` and a seeded
    ``numpy.random.Generator`` and returns the task graph.
    ``scenario_id(scenario)`` formats the stable identifier that seeds the
    graph construction; families registered without one get a generic
    ``<family>-…-s<sample>`` id.  ``extra_params`` names the
    ``Scenario.extras`` keys the family understands: ``None`` accepts
    anything, ``()`` (the built-ins) rejects all extras — which turns a
    misspelled shape parameter in ``Experiment.workload()`` into an
    immediate error instead of a silently-wrong experiment.
    """

    build: Callable[[Any, Any], Any]
    scenario_id: Callable[[Any], str] | None = None
    extra_params: tuple[str, ...] | None = None

    def __call__(self, scenario: Any, rng: Any) -> Any:
        return self.build(scenario, rng)


class Registry:
    """A name → factory mapping with aliases and lazy built-in loading."""

    def __init__(self, kind: str, *, bootstrap: Sequence[str] = ()) -> None:
        self.kind = kind
        self._bootstrap = tuple(bootstrap)
        self._bootstrapped = False
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def _ensure_bootstrapped(self) -> None:
        if not self._bootstrapped:
            self._bootstrapped = True  # set first: the modules call register()
            for module in self._bootstrap:
                import_module(module)

    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str = "",
        aliases: Sequence[str] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        Raises :class:`DuplicateComponentError` when the name or one of the
        aliases is taken, unless ``replace=True``.
        """
        if factory is None:
            def decorator(obj: Callable[..., Any]):
                self.register(name, obj, description=description,
                              aliases=aliases, replace=replace)
                return obj
            return decorator

        self._ensure_bootstrapped()
        for key in (name, *aliases):
            owner = key if key in self._entries else self._aliases.get(key)
            if owner is None:
                continue
            if owner != name:
                # taken by a *different* entry; replace=True must not
                # shadow it (an alias lookup would still win over the
                # replacement, leaving it unreachable)
                raise DuplicateComponentError(
                    f"{self.kind} {key!r} is already registered "
                    f"(by {owner!r})")
            if not replace:
                raise DuplicateComponentError(
                    f"{self.kind} {key!r} is already registered")
        old = self._entries.get(name)
        if old is not None:  # replacing: drop the old entry's aliases
            for alias in old.aliases:
                self._aliases.pop(alias, None)
        entry = RegistryEntry(name=name, factory=factory,
                              description=description, aliases=tuple(aliases))
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (and its aliases); silent when absent."""
        entry = self._entries.pop(name, None)
        if entry is not None:
            for alias in entry.aliases:
                self._aliases.pop(alias, None)

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (or one of its aliases)."""
        self._ensure_bootstrapped()
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) \
                from None

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and invoke its factory."""
        return self.get(name).factory(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted canonical names (aliases excluded)."""
        self._ensure_bootstrapped()
        return sorted(self._entries)

    def entries(self) -> list[RegistryEntry]:
        """All entries, sorted by name."""
        return [self._entries[n] for n in self.names()]

    def __contains__(self, name: str) -> bool:
        self._ensure_bootstrapped()
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()!r})"


# --------------------------------------------------------------------- #
# the four public registries (built-ins self-register on first lookup)
# --------------------------------------------------------------------- #
allocators = Registry(
    "allocator", bootstrap=("repro.scheduling.allocation",))
mapping_strategies = Registry(
    "mapping strategy", bootstrap=("repro.core.strategies",))
dag_families = Registry(
    "DAG family", bootstrap=("repro.dag.generator", "repro.dag.kernels"))
platforms = Registry(
    "platform", bootstrap=("repro.platforms.grid5000",))


def all_registries() -> dict[str, Registry]:
    """The four registries keyed by a human-readable section title."""
    return {
        "allocators": allocators,
        "mapping strategies": mapping_strategies,
        "dag families": dag_families,
        "platforms": platforms,
    }


# --------------------------------------------------------------------- #
# convenience decorators
# --------------------------------------------------------------------- #
def register_allocator(name: str, *, description: str = "",
                       aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a step-one allocation procedure.

    The callable must accept ``(graph, model, total_procs, **kwargs)`` and
    return an :class:`~repro.scheduling.allocation.AllocationResult`.
    """
    return allocators.register(name, description=description,
                               aliases=aliases, replace=replace)


def register_mapping_strategy(name: str, *, description: str = "",
                              aliases: Sequence[str] = (),
                              replace: bool = False):
    """Decorator registering a step-two adaptation strategy factory.

    The factory is called with a :class:`~repro.core.params.RATSParams`
    and must return an object with
    ``decide(scheduler, task) -> (MappingDecision, AdaptationRecord | None)``.
    """
    return mapping_strategies.register(name, description=description,
                                       aliases=aliases, replace=replace)


def register_dag_family(name: str, *, description: str = "",
                        scenario_id: Callable[[Any], str] | None = None,
                        extra_params: Sequence[str] | None = None,
                        aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a scenario DAG family builder.

    Apply to a ``build(scenario, rng) -> TaskGraph`` callable; pass
    ``scenario_id`` to control the stable identifier format (the id seeds
    the RNG, so changing it changes every generated graph) and
    ``extra_params`` to declare which non-``Scenario``-field parameters the
    family accepts (``None`` = any, ``()`` = none).
    """
    def decorator(build: Callable[[Any, Any], Any]):
        dag_families.register(
            name, DagFamily(build=build, scenario_id=scenario_id,
                            extra_params=(None if extra_params is None
                                          else tuple(extra_params))),
            description=description, aliases=aliases, replace=replace)
        return build
    return decorator


@dataclass(frozen=True)
class _ConstantFactory:
    """Zero-arg factory returning a fixed value (picklable, unlike a
    closure — registry snapshots travel to process-pool workers)."""

    value: Any

    def __call__(self) -> Any:
        return self.value


def register_platform(platform, name: str | None = None, *,
                      description: str = "", aliases: Sequence[str] = (),
                      replace: bool = False):
    """Register a platform: a Cluster instance or a zero-arg factory.

    Returns the registered platform, so it can be used inline::

        MINI = register_platform(Cluster("mini", 4, 1e9))
    """
    if callable(platform):
        factory = platform
        if name is None:
            raise ValueError("name is required when registering a factory")
    else:
        factory = _ConstantFactory(platform)
        if name is None:
            name = platform.name
    platforms.register(name, factory, description=description,
                       aliases=aliases, replace=replace)
    return platform
