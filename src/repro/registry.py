"""Pluggable component registries — the extension API of :mod:`repro`.

Every swappable building block of the reproduction is published in one of
four registries so that third-party code can add its own without touching
any ``repro`` module:

* :data:`allocators` — step-one moldable-task allocation procedures
  (``cpa`` / ``mcpa`` / ``hcpa``); a factory
  ``(graph, model, total_procs, **kw) -> AllocationResult``;
* :data:`mapping_strategies` — step-two redistribution-aware adaptation
  strategies (``delta`` / ``timecost``); a factory
  ``(params: RATSParams) -> strategy`` where the strategy exposes
  ``decide(scheduler, task) -> (MappingDecision, AdaptationRecord | None)``
  and, optionally, ``secondary_sort(scheduler, task) -> float`` for the
  §III-C ready-list tie-break;
* :data:`dag_families` — scenario DAG families (``layered`` / ``irregular``
  / ``fft`` / ``strassen``); a :class:`DagFamily` bundling
  ``build(scenario, rng) -> TaskGraph`` with an optional stable
  ``scenario_id(scenario) -> str`` formatter;
* :data:`platforms` — named cluster platforms (``chti`` / ``grillon`` /
  ``grelon``) and multi-cluster grids (``grid5000-grid``); a zero-argument
  factory returning a :class:`~repro.platforms.cluster.Cluster` or
  :class:`~repro.platforms.multicluster.MultiClusterPlatform`;
* :data:`schedulers` — step-two scheduler constructors the experiment
  runner dispatches through (``list`` / ``rats`` and their
  ``multicluster-*`` counterparts); a factory
  ``(graph, platform, model, allocation, *, params=None, redist=None)
  -> scheduler``.

Registering is a one-liner::

    from repro import register_allocator

    @register_allocator("greedy", description="one processor per task")
    def greedy_allocation(graph, model, total_procs, **kwargs):
        ...

Built-in components self-register when their defining module is imported;
each registry lazily imports those modules on first lookup, so
``allocators.get("hcpa")`` works without any prior ``import repro.…``.

Lookup failures raise :class:`UnknownComponentError`, which subclasses
both :class:`KeyError` and :class:`ValueError` (historical call sites
caught either) and lists the available names.

Third-party distributions can auto-register on install by declaring a
``repro.plugins`` entry point (see :func:`load_plugins`); the first
registry bootstrap loads every such plugin exactly once.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from importlib import import_module
from types import ModuleType
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "Registry",
    "RegistryEntry",
    "DagFamily",
    "UnknownComponentError",
    "DuplicateComponentError",
    "allocators",
    "mapping_strategies",
    "dag_families",
    "platforms",
    "schedulers",
    "register_allocator",
    "register_mapping_strategy",
    "register_dag_family",
    "register_platform",
    "register_scheduler",
    "all_registries",
    "load_plugins",
    "PLUGIN_GROUP",
]

#: The ``[project.entry-points."repro.plugins"]`` group third-party
#: packages declare to auto-register components on install.
PLUGIN_GROUP = "repro.plugins"


class UnknownComponentError(KeyError, ValueError):
    """A name was not found in a registry.

    Subclasses both ``KeyError`` (``get_cluster`` historically raised it)
    and ``ValueError`` (``RATSParams`` / ``AlgorithmSpec`` validation did).
    """

    def __init__(self, kind: str, name: str, available: Sequence[str]):
        self.kind = kind
        self.name = name
        self.available = tuple(available)
        # args must mirror __init__ so the exception survives pickling
        # (process-pool workers propagate errors by pickle round-trip)
        super().__init__(kind, name, self.available)

    def __str__(self) -> str:  # KeyError would repr() the message
        shown = ", ".join(self.available) if self.available else "(none)"
        return f"unknown {self.kind} {self.name!r}; available: {shown}"


class DuplicateComponentError(ValueError):
    """A name (or alias) is already registered."""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: a named, described factory."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class DagFamily:
    """A scenario DAG family: graph builder plus id formatter.

    ``build(scenario, rng)`` receives the (duck-typed)
    :class:`~repro.experiments.scenarios.Scenario` and a seeded
    ``numpy.random.Generator`` and returns the task graph.
    ``scenario_id(scenario)`` formats the stable identifier that seeds the
    graph construction; families registered without one get a generic
    ``<family>-…-s<sample>`` id.  ``extra_params`` names the
    ``Scenario.extras`` keys the family understands: ``None`` accepts
    anything, ``()`` (the built-ins) rejects all extras — which turns a
    misspelled shape parameter in ``Experiment.workload()`` into an
    immediate error instead of a silently-wrong experiment.
    """

    build: Callable[[Any, Any], Any]
    scenario_id: Callable[[Any], str] | None = None
    extra_params: tuple[str, ...] | None = None

    def __call__(self, scenario: Any, rng: Any) -> Any:
        return self.build(scenario, rng)


#: > 0 while some registry is importing its built-in modules; guards
#: against re-entrant bootstraps from the cross-importing built-ins.
_bootstrap_depth = 0


class Registry:
    """A name → factory mapping with aliases and lazy built-in loading."""

    def __init__(self, kind: str, *, bootstrap: Sequence[str] = ()) -> None:
        self.kind = kind
        self._bootstrap = tuple(bootstrap)
        self._bootstrapped = False
        self._entries: dict[str, RegistryEntry] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def _ensure_bootstrapped(self) -> None:
        global _bootstrap_depth
        if not self._bootstrapped:
            self._bootstrapped = True  # set first: the modules call register()
            _bootstrap_depth += 1
            try:
                for module in self._bootstrap:
                    import_module(module)
            finally:
                _bootstrap_depth -= 1
            load_plugins()

    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str = "",
        aliases: Sequence[str] = (),
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``; usable as a decorator.

        Raises :class:`DuplicateComponentError` when the name or one of the
        aliases is taken, unless ``replace=True``.
        """
        if factory is None:
            def decorator(obj: Callable[..., Any]):
                self.register(name, obj, description=description,
                              aliases=aliases, replace=replace)
                return obj
            return decorator

        # Registering from inside another registry's bootstrap must not
        # force this registry's own bootstrap: the registries' built-in
        # modules import each other (mapping ↔ strategies ↔ rats), and an
        # eager bootstrap here would re-enter a module that is mid-import.
        # Deferring to the first lookup keeps every chain acyclic; the
        # duplicate check below still sees everything registered so far.
        if _bootstrap_depth == 0:
            self._ensure_bootstrapped()
        for key in (name, *aliases):
            owner = key if key in self._entries else self._aliases.get(key)
            if owner is None:
                continue
            if owner != name:
                # taken by a *different* entry; replace=True must not
                # shadow it (an alias lookup would still win over the
                # replacement, leaving it unreachable)
                raise DuplicateComponentError(
                    f"{self.kind} {key!r} is already registered "
                    f"(by {owner!r})")
            if not replace:
                raise DuplicateComponentError(
                    f"{self.kind} {key!r} is already registered")
        old = self._entries.get(name)
        if old is not None:  # replacing: drop the old entry's aliases
            for alias in old.aliases:
                self._aliases.pop(alias, None)
        entry = RegistryEntry(name=name, factory=factory,
                              description=description, aliases=tuple(aliases))
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return factory

    def unregister(self, name: str) -> None:
        """Remove an entry (and its aliases); silent when absent."""
        entry = self._entries.pop(name, None)
        if entry is not None:
            for alias in entry.aliases:
                self._aliases.pop(alias, None)

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (or one of its aliases)."""
        self._ensure_bootstrapped()
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) \
                from None

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and invoke its factory."""
        return self.get(name).factory(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted canonical names (aliases excluded)."""
        self._ensure_bootstrapped()
        return sorted(self._entries)

    def entries(self) -> list[RegistryEntry]:
        """All entries, sorted by name."""
        return [self._entries[n] for n in self.names()]

    def __contains__(self, name: str) -> bool:
        self._ensure_bootstrapped()
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()!r})"


# --------------------------------------------------------------------- #
# the four public registries (built-ins self-register on first lookup)
# --------------------------------------------------------------------- #
allocators = Registry(
    "allocator", bootstrap=("repro.scheduling.allocation",))
mapping_strategies = Registry(
    "mapping strategy", bootstrap=("repro.core.strategies",))
dag_families = Registry(
    "DAG family", bootstrap=("repro.dag.generator", "repro.dag.kernels"))
platforms = Registry(
    "platform", bootstrap=("repro.platforms.grid5000",
                           "repro.platforms.multicluster"))
schedulers = Registry(
    "scheduler", bootstrap=("repro.scheduling.mapping", "repro.core.rats",
                            "repro.scheduling.multicluster"))


def all_registries() -> dict[str, Registry]:
    """The five registries keyed by a human-readable section title."""
    return {
        "allocators": allocators,
        "mapping strategies": mapping_strategies,
        "dag families": dag_families,
        "platforms": platforms,
        "schedulers": schedulers,
    }


# --------------------------------------------------------------------- #
# entry-point plugins
# --------------------------------------------------------------------- #
_plugins_loaded = False


def load_plugins(group: str = PLUGIN_GROUP, *, reload: bool = False) -> list[str]:
    """Load every installed ``repro.plugins`` entry point once; returns the
    names loaded this call.

    Each entry point resolves to either a module (imported for its
    registration side effects) or a zero-argument callable (invoked).  A
    plugin that fails to load emits a :class:`RuntimeWarning` instead of
    breaking every registry lookup in the host application.  Loading runs
    automatically on the first bootstrap of any registry, so installed
    plugins are visible to ``Experiment``, the CLI and ``python -m repro
    list`` without any import on the user's side.
    """
    global _plugins_loaded
    if _plugins_loaded and not reload:
        return []
    _plugins_loaded = True
    from importlib.metadata import entry_points

    loaded: list[str] = []
    for ep in entry_points(group=group):
        try:
            obj = ep.load()
            if callable(obj) and not isinstance(obj, ModuleType):
                obj()
        except Exception as exc:
            warnings.warn(f"repro plugin {ep.name!r} failed to load: {exc}",
                          RuntimeWarning, stacklevel=2)
            continue
        loaded.append(ep.name)
    return loaded


# --------------------------------------------------------------------- #
# convenience decorators
# --------------------------------------------------------------------- #
def register_allocator(name: str, *, description: str = "",
                       aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a step-one allocation procedure.

    The callable must accept ``(graph, model, total_procs, **kwargs)`` and
    return an :class:`~repro.scheduling.allocation.AllocationResult`.
    """
    return allocators.register(name, description=description,
                               aliases=aliases, replace=replace)


def register_mapping_strategy(name: str, *, description: str = "",
                              aliases: Sequence[str] = (),
                              replace: bool = False):
    """Decorator registering a step-two adaptation strategy factory.

    The factory is called with a :class:`~repro.core.params.RATSParams`
    and must return an object with
    ``decide(scheduler, task) -> (MappingDecision, AdaptationRecord | None)``.
    """
    return mapping_strategies.register(name, description=description,
                                       aliases=aliases, replace=replace)


def register_dag_family(name: str, *, description: str = "",
                        scenario_id: Callable[[Any], str] | None = None,
                        extra_params: Sequence[str] | None = None,
                        aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a scenario DAG family builder.

    Apply to a ``build(scenario, rng) -> TaskGraph`` callable; pass
    ``scenario_id`` to control the stable identifier format (the id seeds
    the RNG, so changing it changes every generated graph) and
    ``extra_params`` to declare which non-``Scenario``-field parameters the
    family accepts (``None`` = any, ``()`` = none).
    """
    def decorator(build: Callable[[Any, Any], Any]):
        dag_families.register(
            name, DagFamily(build=build, scenario_id=scenario_id,
                            extra_params=(None if extra_params is None
                                          else tuple(extra_params))),
            description=description, aliases=aliases, replace=replace)
        return build
    return decorator


def register_scheduler(name: str, *, description: str = "",
                       aliases: Sequence[str] = (), replace: bool = False):
    """Decorator registering a step-two scheduler constructor.

    The factory is called as ``factory(graph, platform, model, allocation,
    params=…, redist=…)`` and must return an object with ``run() ->
    Schedule`` (RATS-style schedulers additionally expose
    ``adaptation_summary()``).  The experiment runner selects the entry
    named ``"list"`` / ``"rats"`` for plain clusters and
    ``"<scheduler_kind>-list"`` / ``"<scheduler_kind>-rats"`` for platforms
    that declare a ``scheduler_kind`` attribute (multi-cluster platforms
    declare ``"multicluster"``), so custom platform types can route to
    custom schedulers by registering under the matching names.
    """
    return schedulers.register(name, description=description,
                               aliases=aliases, replace=replace)


@dataclass(frozen=True)
class _ConstantFactory:
    """Zero-arg factory returning a fixed value (picklable, unlike a
    closure — registry snapshots travel to process-pool workers)."""

    value: Any

    def __call__(self) -> Any:
        return self.value


def register_platform(platform, name: str | None = None, *,
                      description: str = "", aliases: Sequence[str] = (),
                      replace: bool = False):
    """Register a platform: a Cluster instance or a zero-arg factory.

    Returns the registered platform, so it can be used inline::

        MINI = register_platform(Cluster("mini", 4, 1e9))
    """
    if callable(platform):
        factory = platform
        if name is None:
            raise ValueError("name is required when registering a factory")
    else:
        factory = _ConstantFactory(platform)
        if name is None:
            name = platform.name
    platforms.register(name, factory, description=description,
                       aliases=aliases, replace=replace)
    return platform
