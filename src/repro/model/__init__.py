"""Performance models for moldable tasks."""

from repro.model.amdahl import AmdahlModel, PerformanceModel

__all__ = ["AmdahlModel", "PerformanceModel"]
