"""Amdahl speedup model for moldable data-parallel tasks (paper §II-A).

A fraction ``α`` of a task's sequential execution time is non-parallelizable
[Amdahl 1967]:

    ``T(t, p) = T_seq(t) · (α + (1 − α) / p)``

with ``T_seq(t) = flops(t) / speed`` on a homogeneous cluster whose nodes
deliver ``speed`` Flop/s.  The model is *monotonically decreasing* in ``p``
(strictly, whenever ``α < 1``) and the work ``ω = p · T(t, p)`` is
*monotonically increasing* in ``p`` (strictly, whenever ``α > 0``) — the two
monotonicity properties the RATS strategies rely on.
"""

from __future__ import annotations

from typing import Protocol

from repro.dag.task import Task

__all__ = ["PerformanceModel", "AmdahlModel"]


class PerformanceModel(Protocol):
    """Anything that can predict a moldable task's parallel execution time."""

    def time(self, task: Task, nprocs: int) -> float:
        """Predicted execution time of ``task`` on ``nprocs`` processors."""
        ...

    def work(self, task: Task, nprocs: int) -> float:
        """Predicted work ``ω = nprocs · time``."""
        ...


class AmdahlModel:
    """Amdahl's-law performance model bound to a processor speed.

    Parameters
    ----------
    speed_flops:
        Per-node processing speed in Flop/s (e.g. ``3.379e9`` for the
        grillon cluster of Table II).
    """

    def __init__(self, speed_flops: float) -> None:
        if speed_flops <= 0:
            raise ValueError("speed_flops must be > 0")
        self.speed_flops = float(speed_flops)

    def sequential_time(self, task: Task) -> float:
        """``T(t, 1)`` — the single-processor execution time."""
        return task.flops / self.speed_flops

    def time(self, task: Task, nprocs: int) -> float:
        """``T(t, p) = T_seq · (α + (1 − α)/p)``; requires ``p ≥ 1``."""
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        seq = self.sequential_time(task)
        return seq * (task.alpha + (1.0 - task.alpha) / nprocs)

    def work(self, task: Task, nprocs: int) -> float:
        """``ω(t, p) = p · T(t, p)`` — processor-seconds consumed."""
        return nprocs * self.time(task, nprocs)

    def speedup(self, task: Task, nprocs: int) -> float:
        """``T(t,1) / T(t,p)``."""
        return self.sequential_time(task) / self.time(task, nprocs)

    def time_gain(self, task: Task, from_procs: int, to_procs: int) -> float:
        """``T(t, from) − T(t, to)`` — positive when growing helps."""
        return self.time(task, from_procs) - self.time(task, to_procs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AmdahlModel(speed_flops={self.speed_flops:g})"
