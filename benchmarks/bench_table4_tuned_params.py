"""Table IV — tuned (mindelta, maxdelta, minrho) per application type × cluster.

Runs the §IV-C tuning procedure (delta sweep arg-min + rho sweep arg-min)
on a reduced grid/scenario budget and prints the resulting table next to
the paper's.  Absolute arg-mins depend on the substrate; the comparison to
check is qualitative (maxdelta tends high, packing budgets non-trivial).
"""

from __future__ import annotations

from repro.core.params import PAPER_TUNED_PARAMS
from repro.experiments.scenarios import scenarios_by_family, subsample
from repro.experiments.tables import table4_tuned_params
from repro.experiments.tuning import tune_parameters
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once, scale_fraction


def test_table4(benchmark, runner):
    fraction = scale_fraction()
    full = fraction >= 1.0
    by_family = {
        family: subsample(group, max(fraction * (1.0 if full else 0.3),
                                     2 / len(group)))
        for family, group in scenarios_by_family().items()
    }
    # quick mode sweeps a reduced grid; REPRO_FULL uses the paper's §IV-C grid
    grids = {} if full else {
        "mindeltas": (0.0, -0.5),
        "maxdeltas": (0.0, 0.5, 1.0),
        "minrhos": (0.2, 0.5, 1.0),
    }
    clusters = [GRILLON]  # quick mode tunes the paper's headline cluster

    def campaign():
        return tune_parameters(by_family, clusters, runner=runner, **grids)

    table = run_once(benchmark, campaign)

    ours = table4_tuned_params(table)
    paper = table4_tuned_params(PAPER_TUNED_PARAMS)
    emit("table4", ours + "\n\npaper's Table IV for reference:\n" + paper)

    for (cluster, family), (mind, maxd, rho) in table.items():
        assert mind <= 0 <= maxd
        assert 0 < rho <= 1
