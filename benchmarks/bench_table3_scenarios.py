"""Tables II & III — cluster characteristics and the 557 configurations.

Benchmarks the DAG generation pipeline and verifies the catalogue matches
Table III's counts exactly.
"""

from __future__ import annotations

from repro.experiments.scenarios import Scenario, all_scenarios
from repro.experiments.tables import table2_clusters, table3_scenarios
from repro.platforms.grid5000 import CHTI, GRELON, GRILLON

from conftest import emit


def test_table2_and_table3(benchmark):
    scenarios = benchmark(all_scenarios)
    assert len(scenarios) == 557
    by_family: dict[str, int] = {}
    for sc in scenarios:
        by_family[sc.family] = by_family.get(sc.family, 0) + 1
    assert by_family == {"layered": 108, "irregular": 324,
                         "fft": 100, "strassen": 25}
    emit("table2", table2_clusters([CHTI, GRELON, GRILLON]))
    emit("table3", table3_scenarios())


def test_dag_generation_speed(benchmark):
    """Building the largest random DAG configuration."""
    sc = Scenario(family="irregular", n_tasks=100, width=0.8, density=0.8,
                  regularity=0.8, jump=4, sample=0)
    g = benchmark(sc.build)
    assert g.num_tasks == 100
