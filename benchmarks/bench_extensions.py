"""Benches for the §V future-work extensions (not paper artefacts).

* multi-cluster scheduling: translated-HCPA baseline vs multi-cluster RATS
  across the three Table II clusters joined by a WAN;
* automatic parameter tuning: autotuned vs naive parameters per family.
"""

from __future__ import annotations

from repro.core.autotune import autotune
from repro.core.params import NAIVE_TIMECOST, RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.generator import DagShape, random_irregular_dag
from repro.platforms.grid5000 import CHTI, GRELON, GRILLON
from repro.platforms.multicluster import MultiClusterPlatform
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.scheduling.multicluster import (
    MultiClusterListScheduler,
    MultiClusterRATSScheduler,
    reference_allocation,
)
from repro.simulation.simulator import simulate
from repro.utils.rng import spawn_rng

from conftest import emit, run_once


def test_multicluster_extension(benchmark):
    platform = MultiClusterPlatform(clusters=(CHTI, GRILLON, GRELON),
                                    wan_latency_s=10e-3)

    def campaign():
        rows = []
        for s in range(4):
            g = random_irregular_dag(
                DagShape(n_tasks=40, width=0.5, regularity=0.8,
                         density=0.2, jump=2),
                spawn_rng("bench-multicluster", s))
            alloc = reference_allocation(g, platform).allocation
            base = MultiClusterListScheduler(g, platform, alloc).run()
            rats = MultiClusterRATSScheduler(g, platform, alloc,
                                             NAIVE_TIMECOST).run()
            rows.append((simulate(base).makespan,
                         simulate(rats).makespan))
        return rows

    rows = run_once(benchmark, campaign)
    ratios = [r / b for b, r in rows]
    mean = sum(ratios) / len(ratios)
    emit("extension_multicluster",
         "Extension: multi-cluster scheduling (chti+grillon+grelon over "
         "10 ms WAN)\n"
         + "\n".join(f"  sample {i}: HCPA {b:8.2f}s  RATS tc {r:8.2f}s  "
                     f"ratio {r / b:.3f}"
                     for i, (b, r) in enumerate(rows))
         + f"\n  mean ratio {mean:.3f} (RATS avoids WAN redistributions)")
    assert mean < 1.1


def test_autotune_extension(benchmark):
    cluster = GRILLON
    model = cluster.performance_model()

    def campaign():
        rows = []
        for s in range(3):
            g = random_irregular_dag(
                DagShape(n_tasks=30, width=0.5, regularity=0.8,
                         density=0.2, jump=2),
                spawn_rng("bench-autotune", s))
            alloc = hcpa_allocation(g, model, cluster.num_procs).allocation
            base = simulate(
                ListScheduler(g, cluster, model, alloc).run()).makespan
            naive = simulate(RATSScheduler(
                g, cluster, model, alloc,
                RATSParams("timecost")).run()).makespan
            res = autotune(g, cluster, "timecost", allocation=alloc)
            tuned = simulate(RATSScheduler(
                g, cluster, model, alloc, res.best_params).run()).makespan
            rows.append((base, naive, tuned, res.evaluations))
        return rows

    rows = run_once(benchmark, campaign)
    lines = ["Extension: per-application autotuning (grillon, time-cost)"]
    for i, (base, naive, tuned, evals) in enumerate(rows):
        lines.append(f"  sample {i}: HCPA {base:7.2f}s  naive "
                     f"{naive / base:.3f}  autotuned {tuned / base:.3f} "
                     f"({evals} schedules evaluated)")
    emit("extension_autotune", "\n".join(lines))
    # the tuner optimises the estimate; under contention it must at least
    # stay in the same ballpark as the naive settings
    assert all(t <= n * 1.25 for _, n, t, _ in rows)
