"""Table I — the 1-D block redistribution communication matrix.

Reproduces the paper's example (10 units, p=4 senders → q=5 receivers) and
benchmarks the matrix computation at realistic processor counts.
"""

from __future__ import annotations

import pytest

from repro.redistribution.matrix import communication_matrix

from conftest import emit


def test_table1_matrix(benchmark):
    mat = benchmark(communication_matrix, 10, 4, 5)
    expected = {
        (0, 0): 2.0, (0, 1): 0.5,
        (1, 1): 1.5, (1, 2): 1.0,
        (2, 2): 1.0, (2, 3): 1.5,
        (3, 3): 0.5, (3, 4): 2.0,
    }
    assert set(mat) == set(expected)
    for k, v in expected.items():
        assert mat[k] == pytest.approx(v)

    from repro.experiments.tables import table1_communication_matrix

    emit("table1", table1_communication_matrix()
         + "\n\n(paper Table I: p1->(q1:2, q2:0.5), p2->(q2:1.5, q3:1), "
           "p3->(q3:1, q4:1.5), p4->(q4:0.5, q5:2) — matched exactly)")


def test_matrix_at_cluster_scale(benchmark):
    """120 -> 47 ranks (grelon -> grillon sized): must stay O(p + q)."""
    mat = benchmark(communication_matrix, 968e6, 120, 47)
    assert len(mat) <= 120 + 47 - 1
    assert sum(mat.values()) == pytest.approx(968e6)
