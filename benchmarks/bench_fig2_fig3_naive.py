"""Figures 2 & 3 — naive-parameter RATS vs HCPA on the grillon cluster.

Paper reference points (§IV-B): the delta strategy (mindelta = maxdelta =
0.5) gives makespans on average 9% shorter than HCPA (shorter in 72% of
scenarios); time-cost (packing allowed, minrho = 0.5) averages 16% shorter
(80% of scenarios).  Both consume roughly HCPA-level total work, the delta
strategy the least.

Expected reproduction *shape*: both strategies win in the majority of
configurations, time-cost ranks best on makespan, delta cheapest on work.
"""

from __future__ import annotations

from repro.experiments.figures import figure2_3_naive
from repro.experiments.metrics import relative_series, series_stats
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once


def test_figures_2_and_3(benchmark, runner, scenario_suite):
    def campaign():
        return figure2_3_naive(scenario_suite, GRILLON, runner=runner)

    fig2, fig3, results = run_once(benchmark, campaign)

    lines = [fig2.render(), "", fig3.render(), ""]
    lines.append("paper: delta -9% avg (72% of scenarios shorter), "
                 "time-cost -16% avg (80% shorter)")
    emit("figure2_figure3", "\n".join(lines))

    # reproduction shape assertions (loose: subsample + different substrate)
    for label in ("Delta", "Time-cost"):
        stats = series_stats(relative_series(results, label, "HCPA",
                                             "makespan"))
        assert stats.count == len(scenario_suite)
        assert stats.frac_better > 0.3, f"{label} should win a fair share"
    delta_work = series_stats(relative_series(results, "Delta", "HCPA",
                                              "work"))
    assert delta_work.mean < 1.05, "delta must not cost much more work"
