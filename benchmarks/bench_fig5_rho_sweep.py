"""Figure 5 — minrho sweep (packing on/off) for irregular DAGs on grillon.

Paper reference (§IV-C): allowing allocations to be packed always gives
better average relative makespans; a threshold around minrho = 0.5 is
found, beyond which extra flexibility does not pay.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_rho_curves
from repro.experiments.scenarios import scenarios_by_family, subsample
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once, scale_fraction


def test_figure5(benchmark, runner):
    fraction = scale_fraction()
    irregulars = subsample(scenarios_by_family()["irregular"],
                           max(fraction * 0.5, 8 / 324))

    def campaign():
        return figure5_rho_curves(irregulars, GRILLON, runner=runner)

    fig, sweep = run_once(benchmark, campaign)
    text = fig.render() + (
        f"\n\n({len(irregulars)} irregular DAGs; paper: packing allowed "
        f"dominates no-packing, threshold near minrho = 0.5)")
    emit("figure5", text)

    # packing-allowed curve must dominate (not be worse than) no-packing
    # on average, as the paper observes
    packed = [v for (_, pack), v in sweep.averages.items() if pack]
    unpacked = [v for (_, pack), v in sweep.averages.items() if not pack]
    assert sum(packed) / len(packed) <= sum(unpacked) / len(unpacked) + 0.02
