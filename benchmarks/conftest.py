"""Shared infrastructure for the table/figure benchmarks.

Scale control
-------------
Every experiment bench runs on a *stratified subsample* of the paper's 557
application configurations so the default ``pytest benchmarks/`` finishes in
minutes.  Set ``REPRO_FULL=1`` for the full-scale runs (tens of minutes) or
``REPRO_FRACTION=0.25`` for anything in between.

All benches share one :class:`~repro.experiments.runner.ExperimentRunner`
per session, so task graphs and HCPA allocations are built once and reused
across tables and figures — exactly like the paper's single experimental
campaign.

Rendered tables/figures are printed and also written to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import all_scenarios, subsample

RESULTS_DIR = Path(__file__).parent / "results"

#: default subsample of the 557 configurations for quick benchmarking
DEFAULT_FRACTION = 0.06


def scale_fraction() -> float:
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    return float(os.environ.get("REPRO_FRACTION", DEFAULT_FRACTION))


@pytest.fixture(scope="session")
def fraction() -> float:
    return scale_fraction()


@pytest.fixture(scope="session")
def scenario_suite(fraction):
    """The (sub)sampled scenario set used by the comparison benches."""
    return subsample(all_scenarios(), fraction)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def tuned_three_cluster_results(runner, scenario_suite):
    """The tuned RATS vs HCPA campaign on all three clusters (§IV-D).

    Shared by the Table V and Table VI benches (the paper computes both
    from the same 557-experiment campaign).
    """
    from repro.experiments.runner import baseline_spec, rats_spec
    from repro.platforms.grid5000 import CHTI, GRELON, GRILLON

    specs = [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(tuned=True, strategy="delta", label="delta"),
        rats_spec(tuned=True, strategy="timecost", label="time-cost"),
    ]
    return runner.run_matrix(scenario_suite, [CHTI, GRILLON, GRELON], specs)


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
