"""Table V — pairwise better/equal/worse counts on chti / grillon / grelon.

Paper reference (§IV-D): the ranking by occurrences of best results is
{time-cost, delta, HCPA}; RATS variants beat HCPA in ~72-74% of the
combined comparisons; time-cost gains with cluster size while delta is
strongest on small/medium clusters.
"""

from __future__ import annotations

from repro.experiments.metrics import combined_comparison
from repro.experiments.tables import table5_pairwise

from conftest import emit, run_once


def test_table5(benchmark, runner, tuned_three_cluster_results):
    results = tuned_three_cluster_results
    algos = ["HCPA", "delta", "time-cost"]
    clusters = ["chti", "grillon", "grelon"]

    def render():
        return table5_pairwise(results, algos, clusters)

    text = run_once(benchmark, render)
    emit("table5", text + "\n\npaper: ranking {time-cost, delta, HCPA}; "
         "HCPA worse than the others combined in ~72-74% of scenarios")

    # reproduction shape: both RATS variants beat HCPA more often than not,
    # and the combined ranking keeps HCPA last
    comb = combined_comparison(results, algos)
    assert comb["time-cost"]["better"] > comb["HCPA"]["better"]
    assert comb["delta"]["better"] > comb["HCPA"]["better"]
