"""Ablation benches for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these quantify the levers behind the
reproduction:

* ``guard_stretch`` on/off — how much of time-cost's win comes from the
  §III-A finish-time estimation versus the pure work-ratio rule;
* ``candidates="rich"`` — how far redistribution-aware *set selection*
  alone (no allocation adaptation) closes the gap to RATS;
* allocator family — CPA vs HCPA vs MCPA under the same mapping step.
"""

from __future__ import annotations

from repro.core.params import NAIVE_TIMECOST, RATSParams
from repro.experiments.metrics import relative_series, series_stats
from repro.experiments.runner import baseline_spec, rats_spec
from repro.experiments.scenarios import subsample
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once


def test_guard_stretch_ablation(benchmark, runner, scenario_suite):
    scen = subsample(scenario_suite, 0.5) if len(scenario_suite) > 20 \
        else scenario_suite
    specs = [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(NAIVE_TIMECOST, label="tc-guarded"),
        rats_spec(RATSParams("timecost", guard_stretch=False),
                  label="tc-unguarded"),
    ]

    def campaign():
        return runner.run_matrix(scen, [GRILLON], specs)

    results = run_once(benchmark, campaign)
    lines = ["Ablation: time-cost stretch finish-guard (grillon)"]
    for label in ("tc-guarded", "tc-unguarded"):
        stats = series_stats(
            relative_series(results, label, "HCPA", "makespan"))
        lines.append(f"  {label:<14} mean ratio {stats.mean:.3f}, "
                     f"wins {stats.frac_better * 100:.0f}%")
    emit("ablation_guard", "\n".join(lines))


def test_rich_mapping_ablation(benchmark, runner, scenario_suite):
    """Redistribution-aware set reuse without allocation adaptation."""
    from repro.core.rats import RATSScheduler  # noqa: F401 (doc pointer)
    from repro.experiments.runner import AlgorithmSpec, ExperimentRunner
    from repro.scheduling.mapping import ListScheduler
    from repro.simulation.simulator import simulate

    scen = subsample(scenario_suite, 0.5) if len(scenario_suite) > 20 \
        else scenario_suite

    def campaign():
        rows = []
        for sc in scen:
            graph = runner.graph_for(sc)
            model = GRILLON.performance_model()
            alloc = runner.allocation_for(sc, GRILLON, "hcpa")
            redist = runner.redist_for(GRILLON)
            for label, policy in (("earliest", "earliest"), ("rich", "rich")):
                schedule = ListScheduler(graph, GRILLON, model, alloc,
                                         redist=redist,
                                         candidates=policy).run()
                rows.append((sc.scenario_id, label,
                             simulate(schedule).makespan))
        return rows

    rows = run_once(benchmark, campaign)
    by_id: dict[str, dict[str, float]] = {}
    for sid, label, ms in rows:
        by_id.setdefault(sid, {})[label] = ms
    ratios = sorted(v["rich"] / v["earliest"] for v in by_id.values())
    mean = sum(ratios) / len(ratios)
    emit("ablation_rich_mapping",
         "Ablation: rich (redistribution-aware) candidate sets vs earliest-"
         f"available mapping, same HCPA allocation (grillon)\n"
         f"  mean makespan ratio rich/earliest = {mean:.3f} over "
         f"{len(ratios)} scenarios\n"
         f"  (RATS additionally adapts allocation sizes; this isolates "
         f"pure set reuse)")
    assert mean < 1.2


def test_allocator_ablation(benchmark, runner, scenario_suite):
    scen = subsample(scenario_suite, 0.4) if len(scenario_suite) > 20 \
        else scenario_suite
    specs = [baseline_spec(k, label=k) for k in ("cpa", "hcpa", "mcpa")]

    def campaign():
        return runner.run_matrix(scen, [GRILLON], specs)

    results = run_once(benchmark, campaign)
    lines = ["Ablation: allocation procedures under the same mapping "
             "(grillon, simulated makespans relative to HCPA)"]
    for label in ("cpa", "mcpa"):
        stats = series_stats(relative_series(results, label, "hcpa",
                                             "makespan"))
        lines.append(f"  {label:<5} mean ratio {stats.mean:.3f}, "
                     f"median {stats.median:.3f}")
    emit("ablation_allocators", "\n".join(lines))
