"""Figure 4 — (mindelta, maxdelta) sweep for FFT DAGs on grillon.

Paper reference (§IV-C): larger ``maxdelta`` values improve the average
relative makespan (more resources per task); decreasing ``mindelta`` helps
only to a certain extent.  The tuned optimum for (grillon, FFT) in Table IV
is (mindelta, maxdelta) = (−0.5, 1).
"""

from __future__ import annotations

import os

from repro.experiments.figures import figure4_delta_surface
from repro.experiments.scenarios import scenarios_by_family, subsample
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once, scale_fraction


def test_figure4(benchmark, runner):
    fraction = scale_fraction()
    ffts = subsample(scenarios_by_family()["fft"],
                     max(fraction, 6 / 100))  # at least 6 FFT DAGs

    def campaign():
        return figure4_delta_surface(ffts, GRILLON, runner=runner)

    fig, sweep = run_once(benchmark, campaign)
    text = fig.render() + (
        f"\n\n({len(ffts)} FFT DAGs; paper: larger maxdelta helps, "
        f"tuned optimum (-0.5, 1) on grillon)")
    emit("figure4", text)

    # the zero-budget corner (0, 0) must not beat every stretched option:
    # allowing adaptation should help somewhere on the grid
    zero = sweep.averages[(0.0, 0.0)]
    assert min(sweep.averages.values()) <= zero + 1e-9
