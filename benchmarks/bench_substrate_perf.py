"""Performance benchmarks of the substrate itself (not a paper artefact).

These keep the fluid simulator and the Max-Min solver honest: the full
557-configuration campaign is only tractable because a dense 100-task
simulation stays in the low seconds.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.scenarios import Scenario
from repro.network.maxmin import maxmin_rates_indexed
from repro.platforms.grid5000 import GRILLON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import simulate
from repro.utils.rng import spawn_rng


def _dense_schedule():
    sc = Scenario(family="irregular", n_tasks=100, width=0.5, density=0.8,
                  regularity=0.8, jump=2, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()
    alloc = hcpa_allocation(g, model, GRILLON.num_procs).allocation
    return ListScheduler(g, GRILLON, model, alloc).run()


def test_simulator_dense_dag(benchmark):
    schedule = _dense_schedule()
    res = benchmark.pedantic(lambda: simulate(schedule), rounds=3,
                             iterations=1)
    assert res.makespan > 0


def test_hcpa_allocation_speed(benchmark):
    sc = Scenario(family="layered", n_tasks=100, width=0.8, density=0.8,
                  regularity=0.8, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()
    res = benchmark(hcpa_allocation, g, model, GRILLON.num_procs)
    assert res.converged or res.iterations > 0


def test_maxmin_solver_speed(benchmark):
    """1000 random flows over grelon-sized topology (250 links)."""
    rng = spawn_rng("maxmin-bench")
    n_links, n_flows = 250, 1000
    capacities = np.full(n_links, 1.25e8)
    flows = [
        [int(a), int(b)]
        for a, b in rng.integers(0, n_links, size=(n_flows, 2))
    ]
    rates = benchmark(maxmin_rates_indexed, flows, capacities)
    assert len(rates) == n_flows
    assert (rates >= 0).all()
