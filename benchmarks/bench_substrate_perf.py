"""Performance benchmarks of the substrate itself (not a paper artefact).

These keep the fluid simulator and the Max-Min solver honest: the full
557-configuration campaign is only tractable because a dense 100-task
simulation stays in the low seconds.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.bench import dense_dag_schedule
from repro.experiments.scenarios import Scenario
from repro.network.maxmin import maxmin_rates_indexed
from repro.platforms.grid5000 import GRILLON
from repro.scheduling.allocation import hcpa_allocation
from repro.simulation.simulator import simulate
from repro.utils.rng import spawn_rng


def _dense_schedule():
    # the one canonical bench workload — shared with `repro bench` and
    # the golden simulator tests so all three measure the same thing
    return dense_dag_schedule(100)


def test_simulator_dense_dag(benchmark):
    schedule = _dense_schedule()
    res = benchmark.pedantic(lambda: simulate(schedule), rounds=3,
                             iterations=1)
    assert res.makespan > 0


def test_simulator_bundling_speedup(benchmark):
    """Bundled Max-Min solves vs the per-flow reference path.

    Guards the PR-3 fast path: identical results (events and makespan),
    and the bundled solver must stay well ahead of the reference
    implementation it replaced.
    """
    import time

    from repro.simulation.simulator import FluidSimulator

    schedule = _dense_schedule()
    t0 = time.perf_counter()
    ref = FluidSimulator(schedule, use_bundling=False).run()
    t_ref = time.perf_counter() - t0

    fast = benchmark.pedantic(
        lambda: FluidSimulator(schedule).run(), rounds=2, iterations=1)
    t_fast = benchmark.stats.stats.min

    assert fast.events == ref.events
    assert abs(fast.makespan - ref.makespan) <= 1e-9 * ref.makespan
    speedup = t_ref / t_fast
    print(f"\ndense-DAG simulate: reference {t_ref:.2f}s, "
          f"bundled {t_fast:.2f}s, speedup {speedup:.2f}x")
    assert speedup > 1.5, (
        f"bundled solver no faster than reference ({speedup:.2f}x)")


def test_hcpa_allocation_speed(benchmark):
    sc = Scenario(family="layered", n_tasks=100, width=0.8, density=0.8,
                  regularity=0.8, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()
    res = benchmark(hcpa_allocation, g, model, GRILLON.num_procs)
    assert res.converged or res.iterations > 0


def test_maxmin_solver_speed(benchmark):
    """1000 random flows over grelon-sized topology (250 links)."""
    rng = spawn_rng("maxmin-bench")
    n_links, n_flows = 250, 1000
    capacities = np.full(n_links, 1.25e8)
    flows = [
        [int(a), int(b)]
        for a, b in rng.integers(0, n_links, size=(n_flows, 2))
    ]
    rates = benchmark(maxmin_rates_indexed, flows, capacities)
    assert len(rates) == n_flows
    assert (rates >= 0).all()


def test_simulator_component_reuse(benchmark):
    """Sparse multi-cluster pipelines: the lazy component engine's regime.

    Concurrent transfers touch disjoint processor sets, so the active
    flows decompose into ~one link-connected component per cluster and
    the lazy path re-solves far fewer (and far smaller) systems than one
    Max-Min solve per event.
    """
    from repro.experiments.bench import sparse_multicluster_schedule

    schedule = sparse_multicluster_schedule()
    res = benchmark.pedantic(lambda: simulate(schedule), rounds=3,
                             iterations=1)
    # the lazy path must beat one-solve-per-event by >= 2x here
    assert res.solves_component < 0.5 * res.events


def test_maxmin_bundled_speed(benchmark):
    """Same random flow set through the bundled solver (the sim hot path)."""
    from repro.network.maxmin import maxmin_rates_bundled

    rng = spawn_rng("maxmin-bench")
    n_links, n_flows = 250, 1000
    capacities = np.full(n_links, 1.25e8)
    flows = [
        [int(a), int(b)]
        for a, b in rng.integers(0, n_links, size=(n_flows, 2))
    ]
    rates = benchmark(maxmin_rates_bundled, flows, capacities)
    assert len(rates) == n_flows
    ref = maxmin_rates_indexed(flows, capacities)
    np.testing.assert_allclose(rates, ref, rtol=1e-9, atol=1e-9)


def test_parallel_run_matrix_speedup(benchmark):
    """Process-pool run_matrix vs serial on a >= 64-run matrix.

    Guards the registry-era executor: the parallel path must return the
    exact serial result list (modulo wall-clock stamps, disabled here) and
    be measurably faster on multicore hosts.
    """
    import os
    import time

    from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
    from repro.experiments.runner import (
        ExperimentRunner,
        baseline_spec,
        rats_spec,
    )

    scenarios = [
        Scenario(family="layered", n_tasks=25, width=w, density=d,
                 regularity=0.8, sample=s)
        for w in (0.2, 0.5, 0.8) for d in (0.2, 0.8) for s in range(4)
    ]  # 24 scenarios
    specs = [baseline_spec("hcpa", label="HCPA"),
             rats_spec(NAIVE_DELTA, label="delta"),
             rats_spec(NAIVE_TIMECOST, label="time-cost")]
    total_runs = len(scenarios) * len(specs)
    assert total_runs >= 64

    t0 = time.perf_counter()
    serial = ExperimentRunner(record_timings=False).run_matrix(
        scenarios, [GRILLON], specs)
    t_serial = time.perf_counter() - t0

    jobs = min(8, os.cpu_count() or 1)

    def parallel_matrix():
        return ExperimentRunner(record_timings=False).run_matrix(
            scenarios, [GRILLON], specs, jobs=jobs)

    parallel = benchmark.pedantic(parallel_matrix, rounds=1, iterations=1)
    t_parallel = benchmark.stats.stats.mean

    assert parallel == serial  # byte-identical, deterministic order
    speedup = t_serial / t_parallel
    print(f"\n{total_runs}-run matrix: serial {t_serial:.2f}s, "
          f"parallel({jobs}) {t_parallel:.2f}s, speedup {speedup:.2f}x")
    if jobs > 1:
        assert speedup > 1.0, (
            f"parallel run_matrix slower than serial ({speedup:.2f}x)")


def test_persistent_pool_beats_per_call_startup(benchmark):
    """Many small run_matrix calls on ONE runner (persistent pool, warm
    worker caches) vs a fresh runner — and thus a fresh pool — per call.

    This is the `campaign --jobs N` shape: dozens of modest matrices, where
    per-call pool startup used to dominate.
    """
    import time

    from repro.core.params import NAIVE_DELTA
    from repro.experiments.runner import (
        ExperimentRunner,
        baseline_spec,
        rats_spec,
    )

    scenarios = [
        Scenario(family="layered", n_tasks=25, width=0.5, density=0.2,
                 regularity=0.8, sample=s)
        for s in range(4)
    ]
    specs = [baseline_spec("hcpa", label="HCPA"),
             rats_spec(NAIVE_DELTA, label="delta")]
    jobs, calls = 2, 5

    t0 = time.perf_counter()
    per_call_results = []
    for _ in range(calls):
        with ExperimentRunner(record_timings=False, jobs=jobs) as runner:
            per_call_results.append(
                runner.run_matrix(scenarios, [GRILLON], specs))
    t_per_call = time.perf_counter() - t0

    def persistent():
        with ExperimentRunner(record_timings=False, jobs=jobs) as runner:
            return [runner.run_matrix(scenarios, [GRILLON], specs)
                    for _ in range(calls)]

    persistent_results = benchmark.pedantic(persistent, rounds=1,
                                            iterations=1)
    t_persistent = benchmark.stats.stats.mean

    assert persistent_results == per_call_results
    speedup = t_per_call / t_persistent
    print(f"\n{calls} x {len(scenarios) * len(specs)}-run matrices: "
          f"per-call pools {t_per_call:.2f}s, persistent pool "
          f"{t_persistent:.2f}s, speedup {speedup:.2f}x")
    assert speedup > 1.0, (
        f"persistent pool slower than per-call pools ({speedup:.2f}x)")
