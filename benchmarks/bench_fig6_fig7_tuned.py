"""Figures 6 & 7 — Table IV-tuned RATS vs HCPA on the grillon cluster.

Paper reference (§IV-D): with tuned parameters the delta strategy's
schedules become 13% shorter than HCPA on grillon (9% with naive values)
and RATS wins in more configurations; the improvement does not come at the
price of resource usage (delta still consumes less work than HCPA in the
vast majority of scenarios).
"""

from __future__ import annotations

from repro.experiments.figures import figure6_7_tuned
from repro.experiments.metrics import relative_series, series_stats
from repro.platforms.grid5000 import GRILLON

from conftest import emit, run_once


def test_figures_6_and_7(benchmark, runner, scenario_suite):
    def campaign():
        return figure6_7_tuned(scenario_suite, GRILLON, runner=runner)

    fig6, fig7, results = run_once(benchmark, campaign)
    lines = [fig6.render(), "", fig7.render(), "",
             "paper: tuned delta -13% avg on grillon (vs -9% naive); "
             "tuned time-cost about as good as naive (0.5 was already "
             "appropriate)"]
    emit("figure6_figure7", "\n".join(lines))

    for label in ("Delta", "Time-cost"):
        stats = series_stats(
            relative_series(results, label, "HCPA", "makespan"))
        assert stats.frac_better > 0.3
    delta_work = series_stats(relative_series(results, "Delta", "HCPA",
                                              "work"))
    assert delta_work.frac_better > 0.5, \
        "tuned delta should still consume less work than HCPA mostly"
