"""Table VI — average degradation from best (two averaging methods).

Paper reference (§IV-D): time-cost degrades the least (< 6% averaged over
all experiments, < 15% over not-best experiments) and improves with
cluster size; HCPA reaches very high degradations (its schedules can be
more than twice as long as the best).
"""

from __future__ import annotations

from repro.experiments.metrics import degradation_from_best
from repro.experiments.tables import table6_degradation

from conftest import emit, run_once


def test_table6(benchmark, runner, tuned_three_cluster_results):
    results = tuned_three_cluster_results
    algos = ["HCPA", "delta", "time-cost"]
    clusters = ["chti", "grillon", "grelon"]

    def render():
        return table6_degradation(results, algos, clusters)

    text = run_once(benchmark, render)
    emit("table6", text + "\n\npaper: time-cost stays closest to the best "
         "(<= 5.76/5.16/2.74% over all experiments); HCPA degrades worst")

    # reproduction shape: averaged over every cluster's experiments, the
    # time-cost strategy must degrade less than HCPA
    for cluster in clusters:
        sub = [r for r in results if r.cluster == cluster]
        deg = degradation_from_best(sub, algos)
        assert deg["time-cost"].avg_over_all <= deg["HCPA"].avg_over_all
