"""Legacy setup shim: lets ``python setup.py develop`` work in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
need it). Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
