"""Multi-cluster quickstart: target a grid through the Experiment builder.

The three Grid'5000 clusters of Table II are registered as one
``grid5000-grid`` platform (a :class:`repro.MultiClusterPlatform` over a
10 ms WAN), so the fluent builder — and the ``repro run`` CLI — can target
the grid exactly like a single cluster.  The same experiment streamed
against a JSON-Lines result store is fully resumable: run this script
twice and the second run performs zero fresh simulations.

Run:  python examples/multicluster_experiment.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Experiment, ExperimentRunner, JsonlStore

STORE = Path("multicluster_results.jsonl")


def main() -> None:
    with JsonlStore(STORE) as store, \
            ExperimentRunner(store=store, record_timings=False) as runner:
        experiment = (Experiment()
                      .using(runner)
                      .on("grillon", "grid5000-grid")  # cluster AND grid
                      .workload(family="strassen")
                      .workload(family="fft", k=4)
                      .compare("hcpa", "rats-delta", "rats-timecost")
                      .repeats(3))

        # stream results as they land (grid runs take visibly longer)
        print(f"{'scenario':<18}{'platform':<16}{'algorithm':<16}"
              f"{'makespan':>10}")
        results = []
        for r in experiment.stream():
            print(f"{r.scenario_id:<18}{r.cluster:<16}{r.algorithm:<16}"
                  f"{r.makespan:>10.2f}")
            results.append(r)

        print()
        print(experiment.run().summary())  # instant: every run is stored
        print(f"\nstore {STORE}: {store.stats.describe()} — run me again "
              "and everything is a hit")


if __name__ == "__main__":
    main()
