"""Building and scheduling a hand-written scientific workflow.

Shows the public API end to end without the random generators: a small
"ingest → parallel analyses → reduce" pipeline with explicit per-task
costs, a custom (non-Grid'5000) cluster, parameter tuning for the delta
strategy, and validation/inspection of the resulting schedule.

Run:  python examples/custom_workflow.py
"""

from __future__ import annotations

from repro import Cluster, Task, TaskGraph, rats_schedule, simulate
from repro.core.params import RATSParams
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.viz.gantt import ascii_gantt

M = 40e6  # 40M doubles = 320 MB per dataset


def build_workflow() -> TaskGraph:
    g = TaskGraph(name="sensor-pipeline")
    g.add_task(Task("ingest", data_elements=M, flops=160 * M, alpha=0.05))
    for i in range(4):
        g.add_task(Task(f"denoise{i}", data_elements=M, flops=320 * M,
                        alpha=0.10))
        g.add_edge("ingest", f"denoise{i}")
    for i in range(4):
        g.add_task(Task(f"spectrum{i}", data_elements=M, flops=450 * M,
                        alpha=0.15))
        g.add_edge(f"denoise{i}", f"spectrum{i}")
    g.add_task(Task("correlate", data_elements=M, flops=500 * M, alpha=0.2))
    for i in range(4):
        g.add_edge(f"spectrum{i}", "correlate")
    g.add_task(Task("report", data_elements=M / 10, flops=20 * M,
                    alpha=0.02))
    g.add_edge("correlate", "report")
    g.validate(require_single_entry=True, require_single_exit=True)
    return g


def main() -> None:
    graph = build_workflow()
    print(graph.subgraph_summary())

    cluster = Cluster(name="lab-cluster", num_procs=24, speed_flops=2.8e9)
    model = cluster.performance_model()
    print(cluster.describe(), "\n")

    # baseline
    alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
    base = ListScheduler(graph, cluster, model, alloc).run()
    base_ms = simulate(base).makespan

    # a small tuning sweep over the delta budget
    print(f"{'params':<28}{'simulated makespan (s)':>24}")
    print(f"{'HCPA baseline':<28}{base_ms:>24.2f}")
    best = ("HCPA", base_ms)
    for mind, maxd in ((0.0, 0.5), (-0.5, 0.5), (-0.5, 1.0), (-1.0, 1.0)):
        params = RATSParams("delta", mindelta=mind, maxdelta=maxd)
        schedule = rats_schedule(graph, cluster, params, allocation=alloc)
        ms = simulate(schedule).makespan
        label = f"delta({mind:g}, {maxd:g})"
        print(f"{label:<28}{ms:>24.2f}")
        if ms < best[1]:
            best = (label, ms)
    for rho in (0.2, 0.5, 0.8):
        params = RATSParams("timecost", minrho=rho)
        schedule = rats_schedule(graph, cluster, params, allocation=alloc)
        ms = simulate(schedule).makespan
        label = f"time-cost(minrho={rho:g})"
        print(f"{label:<28}{ms:>24.2f}")
        if ms < best[1]:
            best = (label, ms)

    print(f"\nbest configuration: {best[0]} "
          f"({100 * (1 - best[1] / base_ms):+.1f}% vs HCPA)")

    schedule = rats_schedule(graph, cluster, RATSParams("timecost"),
                             allocation=alloc)
    schedule.validate()
    print("\nfinal time-cost schedule:")
    for name in graph.topological_order():
        e = schedule[name]
        print(f"  {name:<10} procs={e.procs} "
              f"[{e.start:7.2f}, {e.finish:7.2f})")
    print()
    print(ascii_gantt(schedule, max_procs=24))


if __name__ == "__main__":
    main()
