"""FFT kernel study: how RATS behaves as the FFT size grows.

The FFT task graph (paper §IV-A) is the friendliest case for
redistribution-aware mapping: every path is critical and tasks of one
level share costs, so parent-set reuse is frequently applicable.  This
example sweeps k = 2..16 data points and reports per-size gains, plus the
effect of the Table IV tuned parameters.

Run:  python examples/fft_study.py
"""

from __future__ import annotations

from repro import GRILLON, fft_dag, simulate, spawn_rng, tuned_params
from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.core.rats import RATSScheduler
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler

SAMPLES = 5


def run_algo(graph, cluster, model, alloc, params=None):
    if params is None:
        scheduler = ListScheduler(graph, cluster, model, alloc)
    else:
        scheduler = RATSScheduler(graph, cluster, model, alloc, params)
    return simulate(scheduler.run()).makespan


def main() -> None:
    cluster = GRILLON
    model = cluster.performance_model()
    print(f"FFT study on {cluster.describe()}\n")
    print(f"{'k':>3}{'tasks':>7}{'HCPA (s)':>10}{'delta':>8}{'t-cost':>8}"
          f"{'delta-tuned':>12}{'tc-tuned':>10}")

    tuned_d = tuned_params(cluster.name, "fft", "delta")
    tuned_t = tuned_params(cluster.name, "fft", "timecost")

    for k in (2, 4, 8, 16):
        sums = {"hcpa": 0.0, "d": 0.0, "t": 0.0, "dt": 0.0, "tt": 0.0}
        n_tasks = 0
        for s in range(SAMPLES):
            g = fft_dag(k, spawn_rng("fft-study", k, s))
            n_tasks = g.num_tasks
            alloc = hcpa_allocation(g, model, cluster.num_procs).allocation
            sums["hcpa"] += run_algo(g, cluster, model, alloc)
            sums["d"] += run_algo(g, cluster, model, alloc, NAIVE_DELTA)
            sums["t"] += run_algo(g, cluster, model, alloc, NAIVE_TIMECOST)
            sums["dt"] += run_algo(g, cluster, model, alloc, tuned_d)
            sums["tt"] += run_algo(g, cluster, model, alloc, tuned_t)
        base = sums["hcpa"] / SAMPLES

        def ratio(key: str) -> str:
            return f"{sums[key] / SAMPLES / base:8.3f}"

        print(f"{k:>3}{n_tasks:>7}{base:>10.2f}{ratio('d')}{ratio('t')}"
              f"{ratio('dt'):>12}{ratio('tt'):>10}")

    print("\n(ratios relative to HCPA; < 1 means RATS is faster — the "
          "paper tunes (mindelta, maxdelta, minrho) to (-0.5, 1, 0.2) "
          "for FFT on grillon)")


if __name__ == "__main__":
    main()
