"""Extending repro without touching its source: the registry API.

This example registers a third-party allocator, mapping strategy, DAG
family and platform, then runs all of them through the fluent
``Experiment`` builder — exactly the extension path a scheduling
researcher would use to benchmark a new policy against the paper's
algorithms.

Run with::

    PYTHONPATH=src python examples/custom_components.py
"""

from __future__ import annotations

from repro import (
    AlgorithmSpec,
    Experiment,
    register_allocator,
    register_dag_family,
    register_mapping_strategy,
    register_platform,
)
from repro.core.strategies import AdaptationRecord
from repro.dag.task import Task, TaskGraph
from repro.platforms.cluster import Cluster
from repro.scheduling.allocation import AllocationResult


# --------------------------------------------------------------------- #
# 1. a custom allocator: square-root fair share of the processors
# --------------------------------------------------------------------- #
@register_allocator("sqrt-share",
                    description="each task gets ~sqrt(P) processors")
def sqrt_share_allocation(graph, model, total_procs, **kwargs):
    n = max(1, int(total_procs ** 0.5))
    allocation = {name: n for name in graph.task_names()}
    return AllocationResult(allocation=allocation, iterations=0,
                            cp_length=0.0, avg_area=0.0, converged=True)


# --------------------------------------------------------------------- #
# 2. a custom mapping strategy: always reuse the heaviest parent's set
# --------------------------------------------------------------------- #
@register_mapping_strategy("greedy-reuse",
                           description="unconditionally reuse the heaviest "
                                       "predecessor's processor set")
class GreedyReuseStrategy:
    def __init__(self, params):
        self.params = params

    def decide(self, scheduler, name):
        preds = [(p, scheduler.schedule[p].procs)
                 for p in scheduler.graph.predecessors(name)
                 if p in scheduler.schedule]
        if not preds:
            return scheduler.best_decision(
                name, scheduler.allocation[name]), None
        pred, procs = max(
            preds, key=lambda pp: (scheduler.graph.edge_bytes(pp[0], name),
                                   pp[0]))
        n_t = scheduler.allocation[name]
        kind = ("stretch" if len(procs) > n_t
                else "pack" if len(procs) < n_t else "same")
        record = AdaptationRecord(task=name, pred=pred, kind=kind,
                                  from_procs=n_t, to_procs=len(procs))
        return scheduler.decision_for_procs(name, procs), record


# --------------------------------------------------------------------- #
# 3. a custom DAG family: map-reduce (fan-out / fan-in) applications
# --------------------------------------------------------------------- #
@register_dag_family(
    "mapreduce",
    scenario_id=lambda sc: f"mapreduce-n{sc.n_tasks}-s{sc.sample}",
    description="entry -> n mappers -> reducer fan-out/fan-in DAGs")
def build_mapreduce(scenario, rng):
    g = TaskGraph(name=scenario.scenario_id)
    g.add_task(Task("split", data_elements=4e6, flops=1e9, alpha=0.05))
    g.add_task(Task("reduce", data_elements=4e6, flops=2e9, alpha=0.1))
    for i in range(max(scenario.n_tasks - 2, 1)):
        name = f"map{i}"
        g.add_task(Task(name, data_elements=2e6,
                        flops=float(rng.uniform(1e9, 8e9)), alpha=0.05))
        g.add_edge("split", name)
        g.add_edge(name, "reduce")
    return g


# --------------------------------------------------------------------- #
# 4. a custom platform
# --------------------------------------------------------------------- #
LAB = register_platform(
    Cluster(name="lab", num_procs=32, speed_flops=8e9),
    description="a modern 32-node lab cluster")


def main() -> None:
    result = (Experiment()
              .on("lab")
              .workload(family="mapreduce", n_tasks=18)
              .compare("hcpa",
                       "sqrt-share",
                       AlgorithmSpec(label="greedy-reuse",
                                     strategy="greedy-reuse"),
                       "rats-timecost")
              .repeats(5)
              .run())
    print(result.summary())
    print("\n(components registered here are also visible to "
          "`python -m repro list` within this process)")


if __name__ == "__main__":
    main()
