"""Quickstart: schedule a mixed-parallel application with RATS.

Builds a random layered DAG of moldable tasks, computes the HCPA two-step
schedule and the two RATS variants, simulates all three on the grillon
cluster, and prints makespans, work, and an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GRILLON,
    NAIVE_DELTA,
    NAIVE_TIMECOST,
    DagShape,
    ListScheduler,
    ascii_gantt,
    hcpa_allocation,
    random_layered_dag,
    rats_schedule,
    simulate,
    spawn_rng,
)
from repro.core.rats import RATSScheduler


def main() -> None:
    # 1. a mixed-parallel application: 25 moldable data-parallel tasks
    graph = random_layered_dag(
        DagShape(n_tasks=25, width=0.5, regularity=0.8, density=0.2),
        spawn_rng("quickstart"),
    )
    print(graph.subgraph_summary())

    cluster = GRILLON
    model = cluster.performance_model()
    print(cluster.describe())

    # 2. step one — HCPA allocation (how many processors per task)
    alloc = hcpa_allocation(graph, model, cluster.num_procs)
    print(f"\nHCPA allocation: {alloc.total_procs_allocated()} processor "
          f"grants over {graph.num_tasks} tasks "
          f"(C_inf={alloc.cp_length:.2f}s, W_bar={alloc.avg_area:.2f}s)")

    # 3. step two — three mapping strategies
    schedules = {
        "HCPA": ListScheduler(graph, cluster, model,
                              alloc.allocation).run(),
        "RATS delta": rats_schedule(graph, cluster, NAIVE_DELTA,
                                    allocation=alloc.allocation),
        "RATS time-cost": rats_schedule(graph, cluster, NAIVE_TIMECOST,
                                        allocation=alloc.allocation),
    }

    # 4. evaluate under network contention (fluid simulation)
    print(f"\n{'algorithm':<16}{'est (s)':>9}{'simulated (s)':>15}"
          f"{'work (proc-s)':>15}")
    results = {}
    for name, schedule in schedules.items():
        sim = simulate(schedule)
        results[name] = sim
        print(f"{name:<16}{schedule.makespan:>9.2f}{sim.makespan:>15.2f}"
              f"{schedule.total_work(model):>15.1f}")

    base = results["HCPA"].makespan
    for name in ("RATS delta", "RATS time-cost"):
        gain = 100 * (1 - results[name].makespan / base)
        print(f"  {name} vs HCPA: {gain:+.1f}% makespan")

    # 5. how RATS adapted the first-step allocations
    rats = RATSScheduler(graph, cluster, model, alloc.allocation,
                         NAIVE_TIMECOST)
    rats.run()
    print(f"\ntime-cost adaptations: {rats.adaptation_summary()}")
    for rec in rats.adaptations[:5]:
        print(f"  {rec.task}: {rec.kind} {rec.from_procs} -> {rec.to_procs} "
              f"procs (reusing {rec.pred}'s set)")

    # 6. a Gantt chart of the winning schedule
    best = min(schedules, key=lambda k: results[k].makespan)
    print(f"\nbest: {best}")
    print(ascii_gantt(results[best].as_executed_schedule(schedules[best]),
                      max_procs=16))

    # 7. the same comparison, declaratively: the fluent Experiment builder
    # resolves every component by registry name (see docs/api.md) and can
    # fan the matrix out over a process pool with .parallel(N)
    from repro import Experiment

    outcome = (Experiment()
               .on("grillon")
               .workload(family="layered", n_tasks=25, width=0.5,
                         regularity=0.8, density=0.2)
               .compare("hcpa", "rats-delta", "rats-timecost")
               .repeats(3)
               .run())
    print("\nExperiment builder over 3 sampled layered DAGs:")
    print(outcome.summary())


if __name__ == "__main__":
    main()
