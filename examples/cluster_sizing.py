"""Cluster sizing: the paper's small-vs-large cluster observation.

§IV-D notes that the time-cost strategy achieves better results as the
cluster grows (its redistribution estimates ignore contention, which is
relatively stronger on small clusters), while delta is strongest on small
and medium clusters.  This example runs one workload family across the
three Grid'5000 clusters of Table II and prints the per-cluster ranking.

Run:  python examples/cluster_sizing.py
"""

from __future__ import annotations

from repro import CHTI, GRELON, GRILLON, simulate, spawn_rng
from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.core.rats import RATSScheduler
from repro.dag.generator import DagShape, random_irregular_dag
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler

SAMPLES = 6


def main() -> None:
    print("Workload: 50-task irregular DAGs (width .5, density .2, jump 2)\n")
    header = f"{'cluster':<10}{'procs':>6}{'HCPA (s)':>10}" \
             f"{'delta':>8}{'t-cost':>8}{'winner':>10}"
    print(header)

    for cluster in (CHTI, GRILLON, GRELON):
        model = cluster.performance_model()
        sums = {"hcpa": 0.0, "delta": 0.0, "timecost": 0.0}
        for s in range(SAMPLES):
            g = random_irregular_dag(
                DagShape(n_tasks=50, width=0.5, regularity=0.8, density=0.2,
                         jump=2),
                spawn_rng("cluster-sizing", s))
            alloc = hcpa_allocation(g, model, cluster.num_procs).allocation
            sums["hcpa"] += simulate(
                ListScheduler(g, cluster, model, alloc).run()).makespan
            for key, params in (("delta", NAIVE_DELTA),
                                ("timecost", NAIVE_TIMECOST)):
                sched = RATSScheduler(g, cluster, model, alloc, params).run()
                sums[key] += simulate(sched).makespan
        base = sums["hcpa"] / SAMPLES
        d = sums["delta"] / SAMPLES / base
        t = sums["timecost"] / SAMPLES / base
        winner = min((("HCPA", 1.0), ("delta", d), ("time-cost", t)),
                     key=lambda kv: kv[1])[0]
        print(f"{cluster.name:<10}{cluster.num_procs:>6}{base:>10.2f}"
              f"{d:>8.3f}{t:>8.3f}{winner:>10}")

    print("\n(ratios relative to HCPA on the same cluster; the paper "
          "observes time-cost improving with cluster size)")


if __name__ == "__main__":
    main()
