"""Strassen matrix multiplication: inspecting RATS's adaptation decisions.

The 25-task Strassen DAG (10 operand additions, 7 sub-products, 8
combination additions) is small enough to inspect every decision RATS
takes: which tasks got packed or stretched onto a parent's processor set,
and what that did to the redistribution volume crossing the network.

Run:  python examples/strassen_matmul.py
"""

from __future__ import annotations

from repro import GRILLON, ascii_gantt, simulate, spawn_rng, strassen_dag
from repro.core.params import NAIVE_TIMECOST
from repro.core.rats import RATSScheduler
from repro.redistribution.cost import RedistributionCost
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler


def network_bytes(graph, schedule, cluster) -> float:
    """Bytes that actually cross the network under a schedule's mapping."""
    rc = RedistributionCost(cluster)
    return sum(
        rc.remote_bytes(schedule[u].procs, schedule[v].procs, data)
        for u, v, data in graph.edges()
    )


def main() -> None:
    cluster = GRILLON
    model = cluster.performance_model()
    graph = strassen_dag(spawn_rng("strassen-example"))
    print(graph.subgraph_summary())
    print(f"entries: {graph.entry_tasks()}")
    print(f"exits  : {graph.exit_tasks()}\n")

    alloc = hcpa_allocation(graph, model, cluster.num_procs)
    print("HCPA allocation per task:")
    for name in graph.topological_order():
        print(f"  {name:<4} -> {alloc[name]:>2} procs", end="")
        if graph.task(name).name.startswith("M"):
            print("   (sub-product)")
        else:
            print()

    base = ListScheduler(graph, cluster, model, alloc.allocation).run()
    rats = RATSScheduler(graph, cluster, model, alloc.allocation,
                         NAIVE_TIMECOST)
    adapted = rats.run()

    print("\nRATS time-cost adaptations:")
    if not rats.adaptations:
        print("  (none fired)")
    for rec in rats.adaptations:
        print(f"  {rec.task:<4} {rec.kind:<7} {rec.from_procs} -> "
              f"{rec.to_procs} procs on {rec.pred}'s set")

    base_sim = simulate(base)
    rats_sim = simulate(adapted)
    base_bytes = network_bytes(graph, base, cluster)
    rats_bytes = network_bytes(graph, adapted, cluster)

    print(f"\n{'':<14}{'HCPA':>12}{'RATS tc':>12}")
    print(f"{'makespan (s)':<14}{base_sim.makespan:>12.2f}"
          f"{rats_sim.makespan:>12.2f}")
    print(f"{'work (proc-s)':<14}{base.total_work(model):>12.1f}"
          f"{adapted.total_work(model):>12.1f}")
    print(f"{'net bytes (GB)':<14}{base_bytes / 1e9:>12.2f}"
          f"{rats_bytes / 1e9:>12.2f}")

    print("\nRATS schedule as executed:")
    print(ascii_gantt(rats_sim.as_executed_schedule(adapted), max_procs=20))


if __name__ == "__main__":
    main()
