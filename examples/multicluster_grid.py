"""Multi-cluster scheduling: the paper's future work, runnable today.

Joins the three Grid'5000 clusters of Table II into one platform over a
10 ms WAN and schedules a data-heavy workflow across them, comparing the
translated-HCPA baseline against multi-cluster RATS.  Watch the WAN: the
redistribution-aware adaptation keeps chains inside one cluster, and the
win grows with WAN latency.

Run:  python examples/multicluster_grid.py
"""

from __future__ import annotations

from repro import CHTI, GRELON, GRILLON, simulate, spawn_rng
from repro.core.params import NAIVE_TIMECOST
from repro.dag.generator import DagShape, random_irregular_dag
from repro.platforms.multicluster import MultiClusterPlatform
from repro.scheduling.multicluster import (
    MultiClusterListScheduler,
    MultiClusterRATSScheduler,
    reference_allocation,
)

SAMPLES = 4


def main() -> None:
    for wan_ms in (1.0, 10.0, 50.0):
        platform = MultiClusterPlatform(
            clusters=(CHTI, GRILLON, GRELON),
            wan_latency_s=wan_ms * 1e-3,
            name=f"grid5000-{wan_ms:g}ms",
        )
        if wan_ms == 1.0:
            print(platform.describe())
            print(f"total processors: {platform.num_procs}\n")
            print(f"{'WAN':>7} {'HCPA (s)':>10} {'RATS tc (s)':>12} "
                  f"{'ratio':>7}  tasks off-reference")

        base_sum = rats_sum = 0.0
        off_ref = 0
        for s in range(SAMPLES):
            g = random_irregular_dag(
                DagShape(n_tasks=40, width=0.5, regularity=0.8,
                         density=0.2, jump=2),
                spawn_rng("multicluster", s))
            alloc = reference_allocation(g, platform).allocation
            base = MultiClusterListScheduler(g, platform, alloc).run()
            rats = MultiClusterRATSScheduler(g, platform, alloc,
                                             NAIVE_TIMECOST).run()
            base_sum += simulate(base).makespan
            rats_sum += simulate(rats).makespan
            # how many tasks left the reference (fastest) cluster?
            ref = max(range(len(platform.clusters)),
                      key=lambda k: platform.clusters[k].speed_flops)
            off_ref += sum(
                1 for name in g.task_names()
                if platform.locate(rats[name].procs[0])[0] != ref)
        print(f"{wan_ms:>5g}ms {base_sum / SAMPLES:>10.2f} "
              f"{rats_sum / SAMPLES:>12.2f} "
              f"{rats_sum / base_sum:>7.3f}  {off_ref / SAMPLES:.1f}/40")

    print("\n(ratio < 1: RATS shorter. Inter-cluster redistributions cross "
          "the WAN; reusing a predecessor's processor set avoids them "
          "entirely, so the gap widens with WAN latency.)")


if __name__ == "__main__":
    main()
