"""Automatic parameter tuning (the paper's §V future work).

Compares, per application, three parameterisations of each RATS strategy:
the paper's naive 0.5 settings, the zero-cost feature-based suggestion,
and the coordinate-descent autotuner — all against the HCPA baseline.

Run:  python examples/autotune_params.py
"""

from __future__ import annotations

from repro import GRILLON, simulate, spawn_rng
from repro.core.autotune import autotune, extract_features, suggest_params
from repro.core.params import RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.generator import DagShape, random_irregular_dag
from repro.dag.kernels import fft_dag
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler


def simulated(graph, cluster, model, alloc, params=None) -> float:
    if params is None:
        sched = ListScheduler(graph, cluster, model, alloc)
    else:
        sched = RATSScheduler(graph, cluster, model, alloc, params)
    return simulate(sched.run()).makespan


def main() -> None:
    cluster = GRILLON
    model = cluster.performance_model()
    apps = {
        "fft-16": fft_dag(16, spawn_rng("autotune-ex", "fft")),
        "irregular-50": random_irregular_dag(
            DagShape(n_tasks=50, width=0.5, regularity=0.8, density=0.2,
                     jump=2),
            spawn_rng("autotune-ex", "irr")),
        "wide-30": random_irregular_dag(
            DagShape(n_tasks=30, width=0.9, regularity=0.5, density=0.8),
            spawn_rng("autotune-ex", "wide")),
    }

    for name, graph in apps.items():
        feats = extract_features(graph, cluster)
        print(f"== {name}: {feats.describe()}")
        alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
        base = simulated(graph, cluster, model, alloc)
        print(f"   HCPA baseline: {base:.2f}s")
        for strategy in ("delta", "timecost"):
            naive = simulated(graph, cluster, model, alloc,
                              RATSParams(strategy))
            hint = suggest_params(graph, cluster, strategy)
            hinted = simulated(graph, cluster, model, alloc, hint)
            tuned = autotune(graph, cluster, strategy, allocation=alloc)
            tuned_ms = simulated(graph, cluster, model, alloc,
                                 tuned.best_params)
            print(f"   {strategy:<9} naive {naive / base:6.3f} | "
                  f"suggested {hinted / base:6.3f} ({hint.describe()}) | "
                  f"autotuned {tuned_ms / base:6.3f} "
                  f"({tuned.best_params.describe()}, "
                  f"{tuned.evaluations} evals)")
        print()

    print("(values are makespan ratios vs HCPA; lower is better)")


if __name__ == "__main__":
    main()
