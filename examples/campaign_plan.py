"""Declarative campaign plans: dedup, user stages and sharding.

A :class:`repro.CampaignPlan` is an ordered list of stages, each
declaring a (scenarios × clusters × specs) matrix plus an artifact
renderer.  Compiling the plan deduplicates every run shared between
stages — here a user experiment (built with the fluent
:class:`repro.Experiment` builder and compiled via ``.plan()``) rides
along with two paper stages and shares their HCPA runs, so the shared
cells simulate once.  The second half executes the same plan as two
key-hash shards into separate stores, merges them and replays the
report from hits alone — the mechanics behind
``repro campaign --shard i/n`` and ``repro merge``
(see docs/sharding.md).

Run:  python examples/campaign_plan.py
"""

from __future__ import annotations

from pathlib import Path

from repro import CampaignPlan, Experiment, ExperimentRunner, merge_stores
from repro.experiments import subsample
from repro.experiments.figures import figure2_3_stage
from repro.experiments.scenarios import scenarios_by_family
from repro.experiments.store import open_store
from repro.experiments.tables import tables5_6_stage
from repro.platforms.grid5000 import GRILLON


def build_plan() -> CampaignPlan:
    scenarios = subsample(scenarios_by_family()["strassen"], 0.1)
    user_stage = (Experiment()
                  .on(GRILLON)
                  .workload(scenarios=scenarios)
                  .compare("hcpa", "rats-timecost")
                  .plan(name="my study"))
    return (CampaignPlan()
            .add(figure2_3_stage(scenarios, GRILLON))
            .add(tables5_6_stage(scenarios, [GRILLON]))
            .add(user_stage))


def main() -> None:
    compiled = build_plan().compile()
    print(f"compiled: {compiled.describe()}")

    # --- direct execution: every unique run simulates exactly once ----
    with ExperimentRunner(record_timings=False) as runner:
        execution = compiled.execute(runner)
    report = execution.report()
    print(f"report: {len(report.splitlines())} lines, "
          f"{len(execution.plan.stages)} stages")

    # --- the same plan, sharded into two stores and replayed ----------
    stores = [Path(f"plan_shard{i}.sqlite") for i in (1, 2)]
    for i, path in enumerate(stores):
        path.unlink(missing_ok=True)
        with open_store(path) as store, \
                ExperimentRunner(store=store,
                                 record_timings=False) as runner:
            compiled.execute(runner, shard=(i, 2))
        print(f"shard {i + 1}/2 -> {path}")

    merged = Path("plan_merged.sqlite")
    merged.unlink(missing_ok=True)
    print(f"merge: {merge_stores(stores, merged).describe()}")

    with open_store(merged) as store, \
            ExperimentRunner(store=store, record_timings=False) as runner:
        replayed = compiled.execute(runner)
        print(f"replay: {store.stats.describe()} "
              "(all hits, zero fresh simulations)")
    assert replayed.report() == report
    print("sharded replay report is byte-identical to the direct run")


if __name__ == "__main__":
    main()
